//! Sub-query memoization with single-flight admission.
//!
//! The server's result cache only hits on byte-identical full requests,
//! but different requests over the same dataset keep rebuilding the same
//! fine-grained units: per-column joint-count contingency tables, the
//! per-set complete-case selection, marginal entropy/CMI terms, and KG
//! extraction columns. [`MemoStore`] pushes the fingerprint-LRU
//! discipline below the request level and caches those units directly.
//!
//! # Key schema
//!
//! A [`MemoKey`] is `(kind, dataset_fp, set_fp, weights_fp, name)`:
//!
//! * `kind` — what the value is ([`MemoKind`]); keys of different kinds
//!   never alias even when the fingerprints agree.
//! * `dataset_fp` — the *content* fingerprint of the dataset (table, KG,
//!   and extraction-column names), so reloading the same bytes reuses
//!   entries and any content change misses.
//! * `set_fp` — the candidate-set fingerprint: the context mask's actual
//!   words (not its popcount — two masks selecting the same number of
//!   rows but different rows must not alias), plus the outcome and
//!   exposure codes with their validity. For [`MemoKind::Extraction`]
//!   this slot carries the options fingerprint instead (extractions are
//!   query-independent but option-dependent).
//! * `weights_fp` — fingerprint of any IPW weight vector baked into the
//!   value (`0` for the unweighted base units).
//! * `name` — the column / term name, kept as a string so distinct names
//!   can never hash-collide into one entry.
//!
//! # Single-flight protocol
//!
//! Lookups go through [`MemoStore::claim`]: the first requester of a
//! missing key becomes the *builder* (it receives a [`BuildTicket`] and
//! computes the value exactly once); concurrent requesters of the same
//! key get [`Claim::Wait`] and park on a condvar via [`MemoStore::wait`]
//! instead of duplicating pool tasks — each such park is counted as a
//! `memo.coalesced_waits`. A builder that drops its ticket without
//! publishing (panic, abort) wakes the waiters and one of them is
//! elected the new builder, so a failed build never wedges the key.
//!
//! # Budget
//!
//! Published values are byte-accounted against a configurable budget
//! (`max_bytes`, `0` = unbounded). Enforcement evicts least-recently-used
//! entries, but never the entry just published and never an entry whose
//! key is *pinned* — i.e. has a live in-flight record because a builder
//! ticket is still open or waiters are still draining. Counters (per-kind
//! hits/misses/inserts/evictions plus coalesced waits) flow through the
//! process-global [`KernelCounters`](nexus_info::KernelCounters), so memo
//! effectiveness is asserted the same way as every other kernel gain:
//! with counters, never wall-clock.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use nexus_info::kernel::counters;
pub use nexus_info::MemoKind;
use nexus_table::{Bitmap, Codes, Fnv64};

/// A type-erased memoized value. Values are immutable once published and
/// shared by `Arc`, so a hit is a pointer clone, never a recompute.
pub type MemoValue = Arc<dyn Any + Send + Sync>;

/// The composite key of one memo entry. See the module docs for the
/// schema and the aliasing guarantees of each component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// What kind of value this key names.
    pub kind: MemoKind,
    /// Dataset content fingerprint (table + KG + extraction columns).
    pub dataset_fp: u64,
    /// Candidate-set fingerprint (mask words + O/T codes), or the
    /// options fingerprint for extraction entries.
    pub set_fp: u64,
    /// Fingerprint of any weight vector baked into the value (0 = none).
    pub weights_fp: u64,
    /// Column / term name (kept verbatim: names never hash-collide).
    pub name: String,
}

impl MemoKey {
    /// A key for a per-column unit of a candidate set.
    pub fn new(
        kind: MemoKind,
        dataset_fp: u64,
        set_fp: u64,
        weights_fp: u64,
        name: impl Into<String>,
    ) -> MemoKey {
        MemoKey {
            kind,
            dataset_fp,
            set_fp,
            weights_fp,
            name: name.into(),
        }
    }
}

/// Content fingerprint of dense categorical codes: every per-row code,
/// the cardinality, and the validity bitmap (present/absent included).
pub fn codes_fingerprint(codes: &Codes) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(codes.codes.len() as u64);
    for &c in &codes.codes {
        h.write_u32(c);
    }
    h.write_u32(codes.cardinality);
    match &codes.validity {
        None => h.write_u8(0),
        Some(v) => {
            h.write_u8(1);
            v.fingerprint_into(&mut h);
        }
    }
    h.finish()
}

/// The candidate-set fingerprint shared by every per-set memo entry: the
/// context mask's actual words plus the outcome and exposure codes.
pub fn set_fingerprint(mask: &Bitmap, o: &Codes, t: &Codes) -> u64 {
    let mut h = Fnv64::new();
    mask.fingerprint_into(&mut h);
    h.write_u64(codes_fingerprint(o));
    h.write_u64(codes_fingerprint(t));
    h.finish()
}

/// Fingerprint of an IPW weight vector (bit-exact over the f64s).
pub fn weights_fingerprint(weights: &[f64]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(weights.len() as u64);
    for &w in weights {
        h.write_f64(w);
    }
    h.finish()
}

/// One published entry.
struct Entry {
    value: MemoValue,
    bytes: u64,
    last_used: u64,
}

/// The in-flight record of a key being built or drained. Its existence
/// pins the key against eviction.
struct Inflight {
    /// A [`BuildTicket`] is open for this key.
    builder_live: bool,
    /// Parked [`MemoStore::wait`] calls still to drain.
    waiters: usize,
}

struct State {
    map: HashMap<MemoKey, Entry>,
    inflight: HashMap<MemoKey, Inflight>,
    /// Logical LRU clock (bumped on insert and on every hit).
    clock: u64,
    resident_bytes: u64,
}

/// The byte-budgeted, single-flight sub-query memo store.
pub struct MemoStore {
    state: Mutex<State>,
    cond: Condvar,
    max_bytes: u64,
}

impl std::fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().expect("memo state");
        f.debug_struct("MemoStore")
            .field("entries", &s.map.len())
            .field("resident_bytes", &s.resident_bytes)
            .field("inflight", &s.inflight.len())
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

/// The outcome of a [`MemoStore::claim`].
pub enum Claim<'a> {
    /// The value is published; here is a shared handle.
    Hit(MemoValue),
    /// The caller is the builder: compute the value and publish it
    /// through the ticket (or drop the ticket to abandon).
    Build(BuildTicket<'a>),
    /// Another request is building this key; call [`MemoStore::wait`].
    Wait,
}

/// The outcome of a [`MemoStore::wait`].
pub enum WaitOutcome<'a> {
    /// The builder published; here is the value.
    Ready(MemoValue),
    /// The builder abandoned and this waiter was elected the new builder.
    Build(BuildTicket<'a>),
}

/// Exclusive permission to build one key. Publish exactly once via
/// [`BuildTicket::publish`]; dropping without publishing abandons the
/// build and wakes the waiters so one of them takes over. The key stays
/// pinned against eviction for as long as the ticket is open.
pub struct BuildTicket<'a> {
    store: &'a MemoStore,
    key: MemoKey,
    published: bool,
}

impl<'a> BuildTicket<'a> {
    /// The key this ticket builds.
    pub fn key(&self) -> &MemoKey {
        &self.key
    }

    /// Publishes the built value (accounted as `bytes` against the
    /// budget) and wakes every waiter. Consumes the ticket; the pin is
    /// released once the waiters have drained.
    pub fn publish(mut self, value: MemoValue, bytes: u64) {
        let mut s = self.store.state.lock().expect("memo state");
        s.clock += 1;
        let stamp = s.clock;
        s.resident_bytes += bytes;
        s.map.insert(
            self.key.clone(),
            Entry {
                value,
                bytes,
                last_used: stamp,
            },
        );
        counters().record_memo_insert(self.key.kind);
        self.published = true;
        // The ticket's own in-flight record still pins the key, so
        // enforcement here can evict anything LRU *except* this entry
        // and other pinned keys.
        self.store.enforce_budget(&mut s);
        release_flight(&mut s, &self.key, |rec| rec.builder_live = false);
        drop(s);
        self.store.cond.notify_all();
    }
}

impl Drop for BuildTicket<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        // Abandoned build (panic or early return): clear the builder
        // flag and wake the waiters so one of them is elected builder.
        let mut s = self.store.state.lock().expect("memo state");
        release_flight(&mut s, &self.key, |rec| rec.builder_live = false);
        drop(s);
        self.store.cond.notify_all();
    }
}

/// Applies `f` to the key's in-flight record, then removes the record if
/// it no longer pins anything (no builder, no waiters).
fn release_flight(s: &mut State, key: &MemoKey, f: impl FnOnce(&mut Inflight)) {
    if let Some(rec) = s.inflight.get_mut(key) {
        f(rec);
        if !rec.builder_live && rec.waiters == 0 {
            s.inflight.remove(key);
        }
    }
}

impl MemoStore {
    /// A store with a byte budget (`0` = unbounded).
    pub fn new(max_bytes: u64) -> MemoStore {
        MemoStore {
            state: Mutex::new(State {
                map: HashMap::new(),
                inflight: HashMap::new(),
                clock: 0,
                resident_bytes: 0,
            }),
            cond: Condvar::new(),
            max_bytes,
        }
    }

    /// The configured byte budget (`0` = unbounded).
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Bytes currently accounted to published entries.
    pub fn resident_bytes(&self) -> u64 {
        self.state.lock().expect("memo state").resident_bytes
    }

    /// Number of published entries.
    pub fn resident_entries(&self) -> usize {
        self.state.lock().expect("memo state").map.len()
    }

    /// Claims `key`: a published value, a build ticket, or an order to
    /// wait on the in-flight builder. Never blocks.
    pub fn claim(&self, key: &MemoKey) -> Claim<'_> {
        let mut s = self.state.lock().expect("memo state");
        s.clock += 1;
        let stamp = s.clock;
        if let Some(entry) = s.map.get_mut(key) {
            entry.last_used = stamp;
            counters().record_memo_hit(key.kind);
            return Claim::Hit(entry.value.clone());
        }
        counters().record_memo_miss(key.kind);
        if let Some(rec) = s.inflight.get_mut(key) {
            rec.waiters += 1;
            counters().record_memo_coalesced_wait();
            return Claim::Wait;
        }
        s.inflight.insert(
            key.clone(),
            Inflight {
                builder_live: true,
                waiters: 0,
            },
        );
        Claim::Build(BuildTicket {
            store: self,
            key: key.clone(),
            published: false,
        })
    }

    /// Blocks until the in-flight build of `key` resolves. Must be called
    /// exactly once after a [`Claim::Wait`] (the wait was registered at
    /// claim time). Returns the published value — or a build ticket when
    /// the original builder abandoned and this waiter takes over.
    pub fn wait(&self, key: &MemoKey) -> WaitOutcome<'_> {
        let mut s = self.state.lock().expect("memo state");
        loop {
            if s.map.contains_key(key) {
                s.clock += 1;
                let stamp = s.clock;
                let entry = s.map.get_mut(key).expect("entry just seen");
                entry.last_used = stamp;
                let value = entry.value.clone();
                release_flight(&mut s, key, |rec| rec.waiters -= 1);
                return WaitOutcome::Ready(value);
            }
            match s.inflight.get_mut(key) {
                Some(rec) if rec.builder_live => {
                    s = self.cond.wait(s).expect("memo state");
                }
                Some(rec) => {
                    // Builder abandoned: this waiter becomes the builder.
                    rec.builder_live = true;
                    rec.waiters -= 1;
                    return WaitOutcome::Build(BuildTicket {
                        store: self,
                        key: key.clone(),
                        published: false,
                    });
                }
                None => {
                    // The record vanished (value published and evicted
                    // again before this waiter ran): start over as a
                    // fresh builder.
                    s.inflight.insert(
                        key.clone(),
                        Inflight {
                            builder_live: true,
                            waiters: 0,
                        },
                    );
                    return WaitOutcome::Build(BuildTicket {
                        store: self,
                        key: key.clone(),
                        published: false,
                    });
                }
            }
        }
    }

    /// Single-flight get-or-build of one typed value. `build` runs at
    /// most once per key across all concurrent callers; everyone gets
    /// the same `Arc`.
    pub fn get_or_build<T, F>(&self, key: &MemoKey, build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> (Arc<T>, u64),
    {
        let mut claim = self.claim(key);
        loop {
            match claim {
                Claim::Hit(value) => {
                    return value.downcast::<T>().expect("memo value type mismatch")
                }
                Claim::Build(ticket) => {
                    let (value, bytes) = build();
                    ticket.publish(value.clone(), bytes);
                    return value;
                }
                Claim::Wait => match self.wait(key) {
                    WaitOutcome::Ready(value) => {
                        return value.downcast::<T>().expect("memo value type mismatch")
                    }
                    WaitOutcome::Build(ticket) => {
                        claim = Claim::Build(ticket);
                    }
                },
            }
        }
    }

    /// Non-counting lookup for diagnostics and tests: no LRU bump, no
    /// hit/miss counters.
    pub fn peek<T: Any + Send + Sync>(&self, key: &MemoKey) -> Option<Arc<T>> {
        let s = self.state.lock().expect("memo state");
        s.map
            .get(key)
            .map(|e| e.value.clone().downcast::<T>().expect("memo value type"))
    }

    /// Evicts least-recently-used entries until the budget holds,
    /// skipping pinned keys (live in-flight records). May leave the
    /// store over budget when everything left is pinned.
    fn enforce_budget(&self, s: &mut State) {
        if self.max_bytes == 0 {
            return;
        }
        while s.resident_bytes > self.max_bytes {
            let victim = s
                .map
                .iter()
                .filter(|(k, _)| !s.inflight.contains_key(k))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(key) => {
                    if let Some(entry) = s.map.remove(&key) {
                        s.resident_bytes -= entry.bytes;
                        counters().record_memo_evictions(key.kind, 1);
                    }
                }
                None => break,
            }
        }
    }
}

/// A shareable memo handle: the store plus the dataset fingerprint every
/// key under this handle is scoped to. This is what the serve layer
/// threads through [`RunControl`](crate::RunControl).
#[derive(Debug, Clone)]
pub struct MemoHandle {
    /// The shared store.
    pub store: Arc<MemoStore>,
    /// Content fingerprint of the dataset requests run against.
    pub dataset_fp: u64,
}

impl MemoHandle {
    /// A handle scoping `store` to the dataset with fingerprint
    /// `dataset_fp`.
    pub fn new(store: Arc<MemoStore>, dataset_fp: u64) -> MemoHandle {
        MemoHandle { store, dataset_fp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_info::kernel::counters;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(name: &str) -> MemoKey {
        MemoKey::new(MemoKind::Contingency, 1, 2, 0, name)
    }

    fn put(store: &MemoStore, name: &str, v: u64, bytes: u64) -> Arc<u64> {
        store.get_or_build(&key(name), || (Arc::new(v), bytes))
    }

    #[test]
    fn get_or_build_roundtrip_and_hit() {
        let store = MemoStore::new(0);
        let before = counters().snapshot();
        let a = put(&store, "a", 41, 10);
        assert_eq!(*a, 41);
        let again = put(&store, "a", 99, 10); // builder must not run
        assert_eq!(*again, 41);
        assert!(Arc::ptr_eq(&a, &again));
        let d = counters().snapshot().delta(&before);
        assert!(d.memo_hits[MemoKind::Contingency as usize] >= 1);
        assert!(d.memo_inserts[MemoKind::Contingency as usize] >= 1);
        assert_eq!(store.resident_entries(), 1);
        assert_eq!(store.resident_bytes(), 10);
    }

    #[test]
    fn distinct_names_and_fingerprints_never_alias() {
        let store = MemoStore::new(0);
        put(&store, "a", 1, 8);
        put(&store, "b", 2, 8);
        let other_set = MemoKey {
            set_fp: 3,
            ..key("a")
        };
        store.get_or_build(&other_set, || (Arc::new(7u64), 8));
        assert_eq!(*store.peek::<u64>(&key("a")).unwrap(), 1);
        assert_eq!(*store.peek::<u64>(&key("b")).unwrap(), 2);
        assert_eq!(*store.peek::<u64>(&other_set).unwrap(), 7);
    }

    #[test]
    fn equal_popcount_masks_do_not_alias() {
        // The collision-safety satellite: two masks selecting the same
        // *number* of rows but different rows must produce different set
        // fingerprints, hence different memo entries.
        let o = Codes {
            codes: vec![0; 128],
            cardinality: 1,
            validity: None,
        };
        let t = o.clone();
        let low: Bitmap = (0..128).map(|i| i < 10).collect();
        let high: Bitmap = (0..128).map(|i| i >= 118).collect();
        assert_eq!(low.count_ones(), high.count_ones());
        let fp_low = set_fingerprint(&low, &o, &t);
        let fp_high = set_fingerprint(&high, &o, &t);
        assert_ne!(fp_low, fp_high);

        let store = MemoStore::new(0);
        let k_low = MemoKey::new(MemoKind::Selection, 1, fp_low, 0, "sel");
        let k_high = MemoKey::new(MemoKind::Selection, 1, fp_high, 0, "sel");
        store.get_or_build(&k_low, || (Arc::new(10u64), 8));
        store.get_or_build(&k_high, || (Arc::new(118u64), 8));
        assert_eq!(*store.peek::<u64>(&k_low).unwrap(), 10);
        assert_eq!(*store.peek::<u64>(&k_high).unwrap(), 118);
    }

    #[test]
    fn budget_evicts_lru_but_never_pinned_entries() {
        let store = MemoStore::new(150);
        let a = key("a");
        let ticket = match store.claim(&a) {
            Claim::Build(t) => t,
            _ => panic!("fresh key must be a build claim"),
        };
        ticket.publish(Arc::new(1u64), 60);
        assert_eq!(store.resident_entries(), 1);

        // Open a build ticket for "p" and keep it open while other
        // inserts push the store over budget: "p" publishes under its
        // own live in-flight record, so it is pinned when enforcement
        // runs at its publish.
        let p = key("p");
        let p_ticket = match store.claim(&p) {
            Claim::Build(t) => t,
            _ => panic!("fresh key must be a build claim"),
        };
        // Publish B and C, exceeding the budget (60+60+60 > 150): LRU
        // eviction must pick "a" (oldest, unpinned) and must never touch
        // the in-flight "p" record.
        put(&store, "b", 2, 60);
        put(&store, "c", 3, 60);
        assert!(store.peek::<u64>(&key("a")).is_none(), "a was LRU");
        assert!(store.peek::<u64>(&key("b")).is_some());
        assert!(store.peek::<u64>(&key("c")).is_some());

        // Now publish "p" (60 bytes): over budget again, but "p" is
        // pinned by its own still-open in-flight record, so enforcement
        // evicts "b" (now the LRU) and keeps "p".
        p_ticket.publish(Arc::new(4u64), 60);
        assert!(store.peek::<u64>(&p).is_some(), "pinned entry survived");
        assert!(
            store.peek::<u64>(&key("b")).is_none(),
            "unpinned LRU evicted instead"
        );
        assert!(store.peek::<u64>(&key("c")).is_some());
        assert!(store.resident_bytes() <= 150);
    }

    #[test]
    fn pinned_entries_exempt_even_when_over_budget() {
        // Budget so small nothing fits: a published-under-pin entry must
        // survive its own enforcement pass, and the store may sit over
        // budget rather than evict a pinned key.
        let store = MemoStore::new(10);
        let a = key("a");
        let ticket = match store.claim(&a) {
            Claim::Build(t) => t,
            _ => panic!("fresh key"),
        };
        // Register a waiter so the in-flight record outlives the publish
        // (waiters drain only through wait()).
        match store.claim(&a) {
            Claim::Wait => {}
            _ => panic!("second claim must coalesce"),
        }
        ticket.publish(Arc::new(1u64), 100);
        // Pinned by the undrained waiter: still resident despite 100 > 10.
        assert!(store.peek::<u64>(&a).is_some());
        assert_eq!(store.resident_bytes(), 100);
        // Drain the waiter; the pin clears. The *next* enforcement pass
        // (any publish) may now evict it.
        match store.wait(&a) {
            WaitOutcome::Ready(v) => {
                assert_eq!(*v.downcast::<u64>().unwrap(), 1)
            }
            WaitOutcome::Build(_) => panic!("value was published"),
        }
        put(&store, "b", 2, 4);
        assert!(store.peek::<u64>(&a).is_none(), "unpinned LRU evicted");
    }

    #[test]
    fn abandoned_build_elects_a_waiter() {
        let store = Arc::new(MemoStore::new(0));
        let a = key("a");
        let ticket = match store.claim(&a) {
            Claim::Build(t) => t,
            _ => panic!("fresh key"),
        };
        match store.claim(&a) {
            Claim::Wait => {}
            _ => panic!("second claim must coalesce"),
        }
        let waiter = {
            let store = store.clone();
            let a = a.clone();
            std::thread::spawn(move || match store.wait(&a) {
                WaitOutcome::Ready(_) => panic!("builder abandoned; waiter must take over"),
                WaitOutcome::Build(ticket) => {
                    ticket.publish(Arc::new(7u64), 8);
                }
            })
        };
        drop(ticket); // abandon without publishing
        waiter.join().unwrap();
        assert_eq!(*store.peek::<u64>(&a).unwrap(), 7);
    }

    #[test]
    fn concurrent_get_or_build_runs_builder_once() {
        let store = Arc::new(MemoStore::new(0));
        let builds = Arc::new(AtomicUsize::new(0));
        let before = counters().snapshot();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let store = store.clone();
                let builds = builds.clone();
                std::thread::spawn(move || {
                    let k = MemoKey::new(MemoKind::CmiTerm, 9, 9, 0, "baseline");
                    let v = store.get_or_build(&k, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Let the other threads pile onto the in-flight
                        // record before publishing.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        (Arc::new(1234u64), 8)
                    });
                    assert_eq!(*v, 1234);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight");
        // Counters are process-global (other tests may run in parallel),
        // so only lower-bound them; exactness is the atomic above.
        let d = counters().snapshot().delta(&before);
        assert!(d.memo_inserts[MemoKind::CmiTerm as usize] >= 1);
    }

    #[test]
    fn fingerprints_cover_codes_content() {
        let base = Codes {
            codes: vec![0, 1, 2, 0],
            cardinality: 3,
            validity: None,
        };
        let mut reordered = base.clone();
        reordered.codes.swap(0, 1);
        assert_ne!(codes_fingerprint(&base), codes_fingerprint(&reordered));
        let mut masked = base.clone();
        masked.validity = Some((0..4).map(|i| i != 3).collect());
        assert_ne!(codes_fingerprint(&base), codes_fingerprint(&masked));
        assert_eq!(codes_fingerprint(&base), codes_fingerprint(&base.clone()));
        assert_ne!(
            weights_fingerprint(&[1.0, 2.0]),
            weights_fingerprint(&[2.0, 1.0])
        );
        assert_eq!(weights_fingerprint(&[]), weights_fingerprint(&[]));
    }
}
