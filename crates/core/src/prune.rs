//! Pruning optimizations (Section 4.2).
//!
//! * **Offline** (query-independent, "across-queries"): drop constants,
//!   attributes with more than 90% missing values, and high-entropy
//!   identifier-like attributes.
//! * **Online** (query-specific): drop attributes logically dependent on
//!   the exposure or outcome (approximate FDs, Lemma A.2), and attributes
//!   with negligible individual relevance (the low-relevance test of the
//!   appendix).

use crate::candidate::{Candidate, CandidateRepr, CandidateSet, MISSING_CODE};

use crate::engine::Engine;
use crate::options::NexusOptions;

/// Why a candidate was pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// Constant value (offline).
    Constant,
    /// More than the allowed fraction missing (offline).
    TooManyMissing,
    /// Near-unique identifier (offline).
    HighEntropy,
    /// Logically dependent on the exposure or outcome (online).
    LogicalDependency,
    /// Individually irrelevant to the outcome (online).
    LowRelevance,
    /// A row-level alias/mediator of the outcome (online).
    OutcomeAlias,
}

/// The outcome of a pruning pass.
#[derive(Debug, Default)]
pub struct PruneReport {
    /// `(candidate name, reason)` for each dropped candidate.
    pub dropped: Vec<(String, PruneReason)>,
}

impl PruneReport {
    /// Number of dropped candidates.
    pub fn n_dropped(&self) -> usize {
        self.dropped.len()
    }

    /// Number dropped for a particular reason.
    pub fn n_dropped_for(&self, reason: PruneReason) -> usize {
        self.dropped.iter().filter(|(_, r)| *r == reason).count()
    }
}

/// Offline pruning: evaluates each candidate's own value distribution
/// (constants, missingness, identifier-likeness) without touching the
/// query. Mutates `set.candidates` in place and reports what was dropped.
pub fn prune_offline(set: &mut CandidateSet, options: &NexusOptions) -> PruneReport {
    let mut report = PruneReport::default();
    let column_codes = &set.column_codes;
    set.candidates.retain(|cand| {
        let reason = offline_reason(cand, column_codes, options);
        match reason {
            Some(r) => {
                report.dropped.push((cand.name.clone(), r));
                false
            }
            None => true,
        }
    });
    report
}

fn offline_reason(
    cand: &Candidate,
    column_codes: &std::collections::HashMap<String, nexus_table::Codes>,
    options: &NexusOptions,
) -> Option<PruneReason> {
    match &cand.repr {
        CandidateRepr::EntityLevel {
            column,
            map,
            cardinality,
        } => {
            let n_entities = column_codes[column].cardinality as usize;
            let present = map.iter().filter(|&&e| e != MISSING_CODE).count();
            if present == 0 {
                return Some(PruneReason::TooManyMissing);
            }
            let missing_fraction = 1.0 - present as f64 / n_entities.max(1) as f64;
            if missing_fraction > options.max_missing_fraction {
                return Some(PruneReason::TooManyMissing);
            }
            let mut distinct = vec![false; *cardinality as usize];
            let mut n_distinct = 0usize;
            for &e in map.iter() {
                if e != MISSING_CODE && !distinct[e as usize] {
                    distinct[e as usize] = true;
                    n_distinct += 1;
                }
            }
            if n_distinct <= 1 {
                return Some(PruneReason::Constant);
            }
            // Identifier-likeness. Binning caps cardinality, so the 0.95
            // row-style ratio only fires on categorical identifiers…
            if n_distinct as f64 / present as f64 > options.high_entropy_ratio && present > 8 {
                return Some(PruneReason::HighEntropy);
            }
            // …while the entity-support ratio catches sparsely-observed
            // attributes that become injective over the few entities they
            // cover (spuriously "perfect" explanations).
            if n_entities >= options.min_entities_for_identifier_test
                && n_distinct as f64 / present as f64 > options.entity_identifier_ratio
            {
                return Some(PruneReason::HighEntropy);
            }
            None
        }
        CandidateRepr::RowLevel(codes) => {
            let n = codes.len();
            let valid = codes.valid_count();
            if valid == 0 {
                return Some(PruneReason::TooManyMissing);
            }
            if (1.0 - valid as f64 / n.max(1) as f64) > options.max_missing_fraction {
                return Some(PruneReason::TooManyMissing);
            }
            let mut distinct = vec![false; codes.cardinality as usize];
            let mut n_distinct = 0usize;
            for i in 0..n {
                if codes.is_valid(i) {
                    let c = codes.codes[i] as usize;
                    if !distinct[c] {
                        distinct[c] = true;
                        n_distinct += 1;
                    }
                }
            }
            if n_distinct <= 1 {
                return Some(PruneReason::Constant);
            }
            if n_distinct as f64 / valid as f64 > options.high_entropy_ratio && valid > 8 {
                return Some(PruneReason::HighEntropy);
            }
            None
        }
    }
}

/// Online pruning: logical-dependency and low-relevance tests against the
/// query's exposure and outcome. Requires the engine (contingencies).
/// Mutates `set.candidates` in place.
pub fn prune_online(
    set: &mut CandidateSet,
    engine: &Engine,
    options: &NexusOptions,
) -> PruneReport {
    // Per-candidate verdicts are independent, so they run on the engine's
    // pool; the verdict vector comes back in candidate order, keeping the
    // report and the compaction identical to the serial pass.
    let verdicts: Vec<Option<PruneReason>> = engine.pool().map(set.candidates.len(), |idx| {
        online_reason(set, engine, options, idx)
    });
    let mut report = PruneReport::default();
    for (idx, reason) in verdicts.iter().enumerate() {
        if let Some(r) = reason {
            report.dropped.push((set.candidates[idx].name.clone(), *r));
        }
    }
    let mut it = verdicts.into_iter();
    set.candidates
        .retain(|_| it.next().expect("verdicts aligned").is_none());
    report
}

/// The online verdict for one candidate (`None` = keep).
fn online_reason(
    set: &CandidateSet,
    engine: &Engine,
    options: &NexusOptions,
    idx: usize,
) -> Option<PruneReason> {
    let stats = engine.stats(set, idx);
    // Degenerate support (e.g. everything missing inside the context).
    if stats.support <= 1.0 {
        return Some(PruneReason::TooManyMissing);
    }
    // Logical dependency with T: both residual entropies ≈ 0 (Lemma
    // A.2); same test against O.
    let fd_t =
        stats.h_t_given_e() <= options.fd_epsilon && stats.h_e_given_t() <= options.fd_epsilon;
    let h_o_given_e = (stats.h_oe.0 - stats.h_e.0).max(0.0);
    let h_e_given_o = (stats.h_oe.0 - stats.h_o.0).max(0.0);
    let fd_o = h_o_given_e <= options.fd_epsilon && h_e_given_o <= options.fd_epsilon;
    if fd_t || fd_o {
        return Some(PruneReason::LogicalDependency);
    }
    // Outcome alias: a row-level attribute that tracks O within
    // exposure groups is a measurement of the outcome, not a
    // confounder.
    if matches!(set.candidates[idx].repr, CandidateRepr::RowLevel(_))
        && stats.relevance() > options.outcome_alias_fraction * stats.h_o.0
    {
        return Some(PruneReason::OutcomeAlias);
    }
    // Low relevance: E tells us nothing about O, marginally or within
    // exposure groups.
    if stats.relevance() <= options.relevance_epsilon
        && stats.relevance_given_t() <= options.relevance_epsilon
    {
        return Some(PruneReason::LowRelevance);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::build_candidates;
    use nexus_kg::KnowledgeGraph;
    use nexus_query::parse;
    use nexus_table::{Column, Table};

    /// Countries with: hdi (real confounder), code/wiki_id (entity-unique
    /// identifiers), kind (constant); base columns CountryCode (FD with the
    /// exposure) and Shoe (row-level, provably irrelevant).
    fn toy() -> (Table, KnowledgeGraph, Vec<String>) {
        let names = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J"];
        let mut countries = Vec::new();
        let mut codes = Vec::new();
        let mut shoes = Vec::new();
        let mut salaries = Vec::new();
        for (ci, c) in names.iter().enumerate() {
            for i in 0..30 {
                countries.push(*c);
                codes.push(format!("CC_{c}"));
                shoes.push(if i % 2 == 0 { "s0" } else { "s1" });
                salaries.push(40.0 + 6.0 * ci as f64);
            }
        }
        let table = Table::new(vec![
            ("Country", Column::from_strs(&countries)),
            ("CountryCode", Column::from_strs(&codes)),
            ("Shoe", Column::from_strs(&shoes)),
            ("Salary", Column::from_f64(salaries)),
        ])
        .unwrap();
        let mut kg = KnowledgeGraph::new();
        for (ci, c) in names.iter().enumerate() {
            let id = kg.add_entity(*c, "Country");
            kg.set_literal(id, "hdi", 0.4 + 0.05 * ci as f64);
            kg.set_literal(id, "code", format!("CODE_{c}"));
            kg.set_literal(id, "kind", "country");
            kg.set_literal(id, "wiki_id", format!("Q{ci}00"));
        }
        (table, kg, vec!["Country".to_string()])
    }

    fn setup() -> CandidateSet {
        let (table, kg, cols) = toy();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        build_candidates(&table, &kg, &cols, &q, &NexusOptions::default()).unwrap()
    }

    #[test]
    fn offline_drops_constants_and_identifiers() {
        let mut set = setup();
        let report = prune_offline(&mut set, &NexusOptions::default());
        let dropped: Vec<&str> = report.dropped.iter().map(|(n, _)| n.as_str()).collect();
        assert!(dropped.contains(&"Country::kind"), "{dropped:?}");
        assert!(dropped.contains(&"Country::wiki_id"), "{dropped:?}");
        // Entity-unique categorical identifiers go too.
        assert!(dropped.contains(&"Country::code"), "{dropped:?}");
        // The binned numeric confounder survives (binning caps its
        // cardinality below the identifier threshold).
        assert!(set.index_of("Country::hdi").is_some());
        // Row-level CountryCode has only 10 distinct values over 300 rows —
        // not identifier-like; it is the online FD test's job.
        assert!(set.index_of("CountryCode").is_some());
        assert_eq!(report.n_dropped_for(PruneReason::Constant), 1);
        assert_eq!(report.n_dropped_for(PruneReason::HighEntropy), 2);
    }

    #[test]
    fn offline_drops_mostly_missing() {
        let (table, mut kg, cols) = toy();
        // An attribute present for one of ten countries (90% missing is the
        // threshold; 1/10 present = 90% missing — not above; make it 0/10
        // by adding to none; instead use a fresh attr on entity 0 only with
        // an 11-country roster trick: simply assert 1-present survives at
        // exactly the 0.9 boundary and tighten the option).
        kg.set_literal(0, "rare", 1.0);
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let mut set = build_candidates(&table, &kg, &cols, &q, &NexusOptions::default()).unwrap();
        let opts = NexusOptions {
            max_missing_fraction: 0.85,
            ..NexusOptions::default()
        };
        let report = prune_offline(&mut set, &opts);
        assert!(report
            .dropped
            .iter()
            .any(|(n, r)| n == "Country::rare" && *r == PruneReason::TooManyMissing));
    }

    #[test]
    fn online_drops_logical_dependency_and_irrelevance() {
        let mut set = setup();
        prune_offline(&mut set, &NexusOptions::default());
        let engine = Engine::new(&set);
        let report = prune_online(&mut set, &engine, &NexusOptions::default());
        let dropped: Vec<&str> = report.dropped.iter().map(|(n, _)| n.as_str()).collect();
        // CountryCode <-> Country is a bijection (the paper's example).
        assert!(dropped.contains(&"CountryCode"), "{dropped:?}");
        // Shoe is row-level and exactly independent of salary.
        assert!(dropped.contains(&"Shoe"), "{dropped:?}");
        // hdi must survive: it is the planted confounder. (It is bijective
        // with neither T nor O after quantile binning.)
        assert!(set.index_of("Country::hdi").is_some(), "{dropped:?}");
    }

    #[test]
    fn pruning_disabled_keeps_everything() {
        let set = setup();
        let n = set.candidates.len();
        // Without calling the prune passes nothing changes — trivial but
        // pins the MESA- baseline contract.
        assert_eq!(set.candidates.len(), n);
    }
}
