//! Candidate-attribute assembly: the set `𝒜 = ℰ ∪ 𝒯 \ {O, T}` of
//! Section 2.2, combining base-table attributes with attributes extracted
//! from the knowledge graph.
//!
//! Extracted attributes are kept **entity-level**: a candidate from
//! extraction column `X` stores one code per distinct linked entity plus
//! the row→entity code vector of `X` (shared across all candidates of that
//! column). This is what lets the estimators run on contingency tables
//! instead of re-scanning millions of rows per attribute.

use std::collections::HashMap;

use nexus_kg::{extract, EntityLinker, ExtractOptions, KnowledgeGraph};
use nexus_query::{context_mask, AggregateQuery};
use nexus_table::{bin_codes, Bitmap, Codes, Column, DataType, Table};

use crate::error::{CoreError, Result};
use crate::options::NexusOptions;

/// Where a candidate attribute came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateSource {
    /// A column of the input table.
    BaseTable,
    /// Extracted from the KG via the named extraction column.
    Extracted {
        /// The extraction column.
        column: String,
    },
}

/// The representation of a candidate's values.
#[derive(Debug, Clone)]
pub enum CandidateRepr {
    /// Row-level codes (base-table attributes).
    RowLevel(Codes),
    /// Entity-level codes for extracted attributes: `map[x]` is the
    /// candidate's code for entity `x` of the extraction column, or
    /// [`MISSING_CODE`] when the entity lacks the attribute.
    EntityLevel {
        /// The extraction column whose row codes index `map`.
        column: String,
        /// Entity code → candidate code (or [`MISSING_CODE`]).
        map: Vec<u32>,
        /// Number of distinct candidate codes.
        cardinality: u32,
    },
}

/// Sentinel marking a missing entity-level value.
pub const MISSING_CODE: u32 = u32::MAX;

/// Selection-bias summary attached to a weighted candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasSummary {
    /// `I(R_E; O | C)` in bits.
    pub mi_with_outcome: f64,
    /// `I(R_E; T | C)` in bits.
    pub mi_with_exposure: f64,
    /// Missing fraction over in-context rows.
    pub missing_fraction: f64,
}

/// One candidate confounding attribute.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Display name: `"{column}::{property}"` for extracted attributes,
    /// the bare column name otherwise.
    pub name: String,
    /// Origin of the attribute.
    pub source: CandidateSource,
    /// Value representation.
    pub repr: CandidateRepr,
    /// Entity-level IPW weights (per entity code), present when selection
    /// bias was detected.
    pub entity_weights: Option<Vec<f64>>,
    /// The bias report that justified the weights.
    pub bias: Option<BiasSummary>,
}

impl Candidate {
    /// Whether this candidate has IPW weights attached.
    pub fn is_weighted(&self) -> bool {
        self.entity_weights.is_some()
    }
}

/// The assembled candidate set for one query.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// All candidates, in assembly order.
    pub candidates: Vec<Candidate>,
    /// Row-level entity codes per extraction column: `codes[i]` is the
    /// entity index of row `i` (validity = successfully linked).
    pub column_codes: HashMap<String, Codes>,
    /// Binned outcome codes (row-level).
    pub o: Codes,
    /// Exposure codes (row-level; composite when the query groups by more
    /// than one column).
    pub t: Codes,
    /// The query context `C` as a row mask.
    pub mask: Bitmap,
    /// Per-column linking statistics.
    pub link_stats: HashMap<String, nexus_kg::LinkStats>,
}

impl CandidateSet {
    /// Number of rows in the underlying table.
    pub fn n_rows(&self) -> usize {
        self.o.len()
    }

    /// Materializes row-level codes for a candidate (cheap gather for
    /// entity-level candidates).
    pub fn row_codes(&self, candidate: &Candidate) -> Codes {
        match &candidate.repr {
            CandidateRepr::RowLevel(c) => c.clone(),
            CandidateRepr::EntityLevel {
                column,
                map,
                cardinality,
            } => {
                let x = &self.column_codes[column];
                let n = x.len();
                let mut codes = Vec::with_capacity(n);
                let mut validity = Bitmap::with_value(n, true);
                for i in 0..n {
                    if !x.is_valid(i) {
                        codes.push(0);
                        validity.set(i, false);
                        continue;
                    }
                    let e = map[x.codes[i] as usize];
                    if e == MISSING_CODE {
                        codes.push(0);
                        validity.set(i, false);
                    } else {
                        codes.push(e);
                    }
                }
                Codes {
                    codes,
                    cardinality: *cardinality,
                    validity: Some(validity),
                }
            }
        }
    }

    /// Row-level IPW weights for a weighted candidate (`w[x]` expanded to
    /// rows; unlinked/missing rows get weight 0).
    pub fn row_weights(&self, candidate: &Candidate) -> Option<Vec<f64>> {
        let ws = candidate.entity_weights.as_ref()?;
        match &candidate.repr {
            CandidateRepr::RowLevel(_) => None,
            CandidateRepr::EntityLevel { column, map, .. } => {
                let x = &self.column_codes[column];
                Some(
                    (0..x.len())
                        .map(|i| {
                            if !x.is_valid(i) {
                                return 0.0;
                            }
                            let e = x.codes[i] as usize;
                            if map[e] == MISSING_CODE {
                                0.0
                            } else {
                                ws[e]
                            }
                        })
                        .collect(),
                )
            }
        }
    }

    /// Index of the candidate with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.candidates.iter().position(|c| c.name == name)
    }
}

/// The query-independent extraction artifact of one extraction column:
/// entity links, row→entity codes, and the entity-level candidates mined
/// from the knowledge graph.
///
/// Everything in here depends only on the table column, the KG, and the
/// extraction options (`hops`, `one_to_many`, `candidate_bins`) — never on
/// the query — so a resident server computes it once per column and reuses
/// it across every request against the same dataset
/// ([`assemble_candidates`] consumes it).
#[derive(Debug, Clone)]
pub struct ColumnExtraction {
    /// The extraction column.
    pub column: String,
    /// Row-level entity codes (validity = successfully linked).
    pub codes: Codes,
    /// Linking statistics for the column.
    pub link_stats: nexus_kg::LinkStats,
    /// Entity-level candidates, unpruned and unweighted.
    pub candidates: Vec<Candidate>,
}

/// Links `column` against `kg` and mines its entity-level candidates —
/// the query-independent half of [`build_candidates`].
pub fn extract_column(
    table: &Table,
    kg: &KnowledgeGraph,
    column: &str,
    options: &NexusOptions,
) -> Result<ColumnExtraction> {
    let col = table.column(column)?;
    let linker = EntityLinker::new(kg);
    let (links, stats) = linker.link_column(col);
    let ea = extract(
        kg,
        &links,
        &ExtractOptions {
            hops: options.hops,
            one_to_many: options.one_to_many,
        },
    );
    // Row-level entity codes for this column.
    let n = table.n_rows();
    let mut codes = Vec::with_capacity(n);
    let mut validity = Bitmap::with_value(n, true);
    for (i, l) in links.iter().enumerate() {
        match l.and_then(|id| ea.index_of.get(&id)) {
            Some(&e) => codes.push(e as u32),
            None => {
                codes.push(0);
                validity.set(i, false);
            }
        }
    }

    // One candidate per extracted attribute.
    let mut candidates = Vec::new();
    for attr in ea.table.column_names() {
        let entity_col = ea.table.column(attr).expect("attribute exists");
        let (map, cardinality) = entity_level_codes(entity_col, options)?;
        candidates.push(Candidate {
            name: format!("{column}::{attr}"),
            source: CandidateSource::Extracted {
                column: column.to_string(),
            },
            repr: CandidateRepr::EntityLevel {
                column: column.to_string(),
                map,
                cardinality,
            },
            entity_weights: None,
            bias: None,
        });
    }

    Ok(ColumnExtraction {
        column: column.to_string(),
        codes: Codes {
            codes,
            cardinality: ea.entity_ids.len() as u32,
            validity: Some(validity),
        },
        link_stats: stats,
        candidates,
    })
}

/// Builds the candidate set for `query` over `table`, extracting attributes
/// from `kg` via `extraction_columns`.
pub fn build_candidates(
    table: &Table,
    kg: &KnowledgeGraph,
    extraction_columns: &[String],
    query: &AggregateQuery,
    options: &NexusOptions,
) -> Result<CandidateSet> {
    let mut extractions = Vec::with_capacity(extraction_columns.len());
    for col_name in extraction_columns {
        extractions.push(extract_column(table, kg, col_name, options)?);
    }
    let refs: Vec<&ColumnExtraction> = extractions.iter().collect();
    assemble_candidates(table, &refs, query, options)
}

/// Assembles the candidate set for `query` from precomputed (possibly
/// cached) column extractions plus the base-table columns — the
/// query-*dependent* half of [`build_candidates`].
///
/// Candidate order (extracted per column in order, then base-table columns)
/// matches [`build_candidates`] exactly, so a set assembled from resident
/// extractions is bit-identical to one built from scratch.
pub fn assemble_candidates(
    table: &Table,
    extractions: &[&ColumnExtraction],
    query: &AggregateQuery,
    options: &NexusOptions,
) -> Result<CandidateSet> {
    let exposure_cols = &query.group_by;
    if exposure_cols.is_empty() {
        return Err(CoreError::BadQuery(
            "query must have a GROUP BY (exposure) attribute".into(),
        ));
    }
    let (_, outcome_col) = query
        .outcome()
        .ok_or_else(|| CoreError::BadQuery("query must aggregate an outcome attribute".into()))?;

    let mask = context_mask(query, table)?;

    // Outcome codes: bin within the context so quantiles reflect C.
    let o = bin_masked(table.column(outcome_col)?, &mask, options)?;

    // Exposure codes: composite over the GROUP BY columns.
    let t = composite_codes(table, exposure_cols, options)?;

    let mut candidates = Vec::new();
    let mut column_codes = HashMap::new();
    let mut link_stats = HashMap::new();

    // ---- extracted candidates -------------------------------------------
    for ex in extractions {
        if ex.codes.len() != table.n_rows() {
            return Err(CoreError::InvalidRequest(format!(
                "extraction for column {:?} covers {} rows but the table has {}",
                ex.column,
                ex.codes.len(),
                table.n_rows()
            )));
        }
        link_stats.insert(ex.column.clone(), ex.link_stats.clone());
        column_codes.insert(ex.column.clone(), ex.codes.clone());
        candidates.extend(ex.candidates.iter().cloned());
    }

    // ---- base-table candidates -------------------------------------------
    for field in table.schema().fields() {
        let name = &field.name;
        if name == outcome_col
            || exposure_cols.contains(name)
            || options.excluded_columns.contains(name)
        {
            continue;
        }
        let col = table.column(name)?;
        let codes = if field.dtype == DataType::Float64
            || (field.dtype == DataType::Int64 && col.distinct_count() > 24)
        {
            bin_masked(col, &mask, options)?
        } else {
            col.category_codes()?
        };
        candidates.push(Candidate {
            name: name.clone(),
            source: CandidateSource::BaseTable,
            repr: CandidateRepr::RowLevel(codes),
            entity_weights: None,
            bias: None,
        });
    }

    Ok(CandidateSet {
        candidates,
        column_codes,
        o,
        t,
        mask,
        link_stats,
    })
}

/// Bins a (possibly numeric) column using edges computed from in-context
/// values only.
fn bin_masked(col: &Column, mask: &Bitmap, options: &NexusOptions) -> Result<Codes> {
    if !col.dtype().is_numeric() {
        return Ok(col.category_codes()?);
    }
    // Compute edges from masked values, then assign every row.
    let values: Vec<f64> = mask.iter_ones().filter_map(|i| col.f64_at(i)).collect();
    if values.is_empty() {
        return Ok(bin_codes(col, options.outcome_bins)?);
    }
    let edges = nexus_table::compute_edges(&values, options.outcome_bins)?;
    let n = col.len();
    let mut codes = Vec::with_capacity(n);
    let mut validity = Bitmap::with_value(n, true);
    for i in 0..n {
        match col.f64_at(i) {
            Some(v) => codes.push(nexus_table::assign_bin(v, &edges)),
            None => {
                codes.push(0);
                validity.set(i, false);
            }
        }
    }
    let cardinality = (edges.len() - 1) as u32;
    Ok(Codes {
        codes,
        cardinality,
        validity: if col.validity().is_some() {
            Some(validity)
        } else {
            None
        },
    })
}

/// Combines the codes of several columns into one dense composite code.
fn composite_codes(table: &Table, columns: &[String], options: &NexusOptions) -> Result<Codes> {
    let mut parts = Vec::with_capacity(columns.len());
    for c in columns {
        let col = table.column(c)?;
        let codes = if col.dtype().is_numeric() && col.distinct_count() > 24 {
            bin_codes(col, options.candidate_bins)?
        } else {
            col.category_codes()?
        };
        parts.push(codes);
    }
    if parts.len() == 1 {
        return Ok(parts.pop().expect("one part"));
    }
    let n = parts[0].len();
    let mut remap: HashMap<u64, u32> = HashMap::new();
    let mut codes = Vec::with_capacity(n);
    let mut validity = Bitmap::with_value(n, true);
    for i in 0..n {
        if parts.iter().any(|p| !p.is_valid(i)) {
            codes.push(0);
            validity.set(i, false);
            continue;
        }
        let mut key = 0u64;
        for p in &parts {
            key = key * (p.cardinality as u64 + 1) + p.codes[i] as u64;
        }
        let next = remap.len() as u32;
        codes.push(*remap.entry(key).or_insert(next));
    }
    let has_null = validity.count_zeros() > 0;
    Ok(Codes {
        codes,
        cardinality: remap.len() as u32,
        validity: if has_null { Some(validity) } else { None },
    })
}

/// Converts an entity-level column into `(map, cardinality)`: numeric
/// columns are quantile-binned over entity values, categoricals keep their
/// dictionary codes. Nulls become [`MISSING_CODE`].
fn entity_level_codes(col: &Column, options: &NexusOptions) -> Result<(Vec<u32>, u32)> {
    let codes = if col.dtype().is_numeric() {
        bin_codes(col, options.candidate_bins)?
    } else {
        col.category_codes()?
    };
    let map: Vec<u32> = (0..codes.len())
        .map(|i| {
            if codes.is_valid(i) {
                codes.codes[i]
            } else {
                MISSING_CODE
            }
        })
        .collect();
    Ok((map, codes.cardinality))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_query::parse;

    /// Tiny dataset: 12 people in 3 countries; KG has hdi per country plus a
    /// sparse attribute.
    fn toy() -> (Table, KnowledgeGraph, Vec<String>) {
        let table = Table::new(vec![
            (
                "Country",
                Column::from_strs(&[
                    "A", "A", "A", "A", "B", "B", "B", "B", "C", "C", "C", "Nowhere",
                ]),
            ),
            (
                "Gender",
                Column::from_strs(&["m", "f", "m", "f", "m", "f", "m", "f", "m", "f", "m", "m"]),
            ),
            (
                "Salary",
                Column::from_f64(vec![
                    90.0, 85.0, 95.0, 88.0, 50.0, 45.0, 55.0, 48.0, 70.0, 65.0, 72.0, 60.0,
                ]),
            ),
        ])
        .unwrap();
        let mut kg = KnowledgeGraph::new();
        for (name, hdi) in [("A", 0.95), ("B", 0.55), ("C", 0.75)] {
            let id = kg.add_entity(name, "Country");
            kg.set_literal(id, "hdi", hdi);
            if name != "B" {
                kg.set_literal(id, "sparse", hdi * 2.0);
            }
        }
        (table, kg, vec!["Country".to_string()])
    }

    #[test]
    fn assembles_extracted_and_base_candidates() {
        let (table, kg, cols) = toy();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let set = build_candidates(&table, &kg, &cols, &q, &NexusOptions::default()).unwrap();
        let names: Vec<&str> = set.candidates.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"Country::hdi"));
        assert!(names.contains(&"Country::sparse"));
        assert!(names.contains(&"Gender"));
        // Exposure and outcome are excluded.
        assert!(!names.contains(&"Country"));
        assert!(!names.contains(&"Salary"));
        // Linking: 11 rows linked, "Nowhere" not found.
        assert_eq!(set.link_stats["Country"].not_found, 1);
        assert_eq!(set.column_codes["Country"].cardinality, 3);
    }

    #[test]
    fn row_codes_expand_entity_level() {
        let (table, kg, cols) = toy();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let set = build_candidates(&table, &kg, &cols, &q, &NexusOptions::default()).unwrap();
        let hdi = &set.candidates[set.index_of("Country::hdi").unwrap()];
        let rows = set.row_codes(hdi);
        assert_eq!(rows.len(), 12);
        // All rows of the same country share a code.
        assert_eq!(rows.codes[0], rows.codes[1]);
        assert_ne!(rows.codes[0], rows.codes[4]);
        // The unlinked row is invalid.
        assert!(!rows.is_valid(11));

        let sparse = &set.candidates[set.index_of("Country::sparse").unwrap()];
        let rows = set.row_codes(sparse);
        // Country B rows (4..8) are missing "sparse".
        assert!(!rows.is_valid(4));
        assert!(rows.is_valid(0));
    }

    #[test]
    fn context_mask_and_outcome_binning() {
        let (table, kg, cols) = toy();
        let q = parse("SELECT Country, avg(Salary) FROM t WHERE Gender = 'm' GROUP BY Country")
            .unwrap();
        let set = build_candidates(&table, &kg, &cols, &q, &NexusOptions::default()).unwrap();
        assert_eq!(set.mask.count_ones(), 7);
        assert!(set.o.cardinality >= 2);
    }

    #[test]
    fn composite_exposure() {
        let (table, kg, cols) = toy();
        let q =
            parse("SELECT Country, Gender, avg(Salary) FROM t GROUP BY Country, Gender").unwrap();
        let set = build_candidates(&table, &kg, &cols, &q, &NexusOptions::default()).unwrap();
        // 4 countries (incl. Nowhere) × 2 genders present.
        assert!(set.t.cardinality >= 6);
        // Gender is now part of the exposure, not a candidate.
        assert!(set.index_of("Gender").is_none());
    }

    #[test]
    fn bad_queries_rejected() {
        let (table, kg, cols) = toy();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let mut no_group = q.clone();
        no_group.group_by.clear();
        assert!(build_candidates(&table, &kg, &cols, &no_group, &NexusOptions::default()).is_err());
        let mut no_agg = q;
        no_agg
            .select
            .retain(|s| matches!(s, nexus_query::SelectItem::Column(_)));
        assert!(build_candidates(&table, &kg, &cols, &no_agg, &NexusOptions::default()).is_err());
    }
}
