//! Top-k unexplained data subgroups (Algorithm 2).
//!
//! After an explanation `E` is produced for query context `C`, the analyst
//! can ask which large data subgroups — context refinements `C' = C ∧
//! (A₁=v₁) ∧ …` — are *not* explained by `E` (their explanation score
//! `I(O;T|C',E)` exceeds a threshold τ). The refinement lattice is
//! traversed top-down through a max-heap ordered by group size, generating
//! each node once and skipping descendants of already-reported groups.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nexus_info::InfoContext;
use nexus_table::{bin_to_column, Bitmap, Codes, Column, DataType, Table};

use crate::candidate::CandidateSet;
use crate::error::Result;
use crate::options::NexusOptions;

/// Options for the subgroup search.
#[derive(Debug, Clone, Copy)]
pub struct SubgroupOptions {
    /// Number of subgroups to report.
    pub k: usize,
    /// Score threshold τ: refinements with `I(O;T|C',E) > τ` are reported.
    pub tau: f64,
    /// Maximum number of conditions in a refinement.
    pub max_depth: usize,
    /// Minimum group size worth reporting (guards against noise estimates
    /// on tiny groups).
    pub min_size: usize,
    /// Safety bound on evaluated refinements.
    pub max_evaluations: usize,
}

impl Default for SubgroupOptions {
    fn default() -> Self {
        SubgroupOptions {
            k: 5,
            tau: 0.2,
            max_depth: 2,
            min_size: 30,
            max_evaluations: 5_000,
        }
    }
}

/// One unexplained subgroup.
#[derive(Debug, Clone)]
pub struct Subgroup {
    /// The conjunction of added conditions, as `(column, value)` pairs.
    pub conditions: Vec<(String, String)>,
    /// Number of rows in the refined context.
    pub size: usize,
    /// The explanation score `I(O;T|C',E)`.
    pub score: f64,
}

impl Subgroup {
    /// A SQL-ish rendering (`Continent == Europe AND …`).
    pub fn describe(&self) -> String {
        self.conditions
            .iter()
            .map(|(c, v)| format!("{c} == {v}"))
            .collect::<Vec<_>>()
            .join(" AND ")
    }
}

/// A refinement attribute: row-level codes plus display labels per code.
struct RefineAttr {
    name: String,
    codes: Codes,
    labels: Vec<String>,
}

/// Builds refinement attributes from the table's columns (binned when
/// numeric), excluding the exposure/outcome columns named in `exclude`.
fn refinement_attrs(
    table: &Table,
    exclude: &[&str],
    options: &NexusOptions,
) -> Result<Vec<RefineAttr>> {
    let mut out = Vec::new();
    for field in table.schema().fields() {
        if exclude.contains(&field.name.as_str()) {
            continue;
        }
        let col = table.column(&field.name)?;
        let (codes, labels) = match field.dtype {
            DataType::Utf8 | DataType::Bool => {
                let codes = col.category_codes()?;
                let labels = labels_for(col, &codes);
                (codes, labels)
            }
            _ => {
                let binned: Column = bin_to_column(col, options.candidate_bins)?;
                let codes = binned.category_codes()?;
                let labels = labels_for(&binned, &codes);
                (codes, labels)
            }
        };
        // Very-high-cardinality attributes make poor subgroup descriptors.
        if codes.cardinality >= 2 && codes.cardinality <= 64 {
            out.push(RefineAttr {
                name: field.name.clone(),
                codes,
                labels,
            });
        }
    }
    Ok(out)
}

/// Representative label per code.
fn labels_for(col: &Column, codes: &Codes) -> Vec<String> {
    let mut labels = vec![String::new(); codes.cardinality as usize];
    let mut found = 0u32;
    for i in 0..codes.len() {
        if codes.is_valid(i) {
            let c = codes.codes[i] as usize;
            if labels[c].is_empty() {
                labels[c] = col.value(i).to_string();
                found += 1;
                if found == codes.cardinality {
                    break;
                }
            }
        }
    }
    labels
}

/// A lattice node in the heap, ordered by group size.
struct Node {
    size: usize,
    /// `(attr index, code)` conditions, attr indices strictly increasing.
    conditions: Vec<(usize, u32)>,
    mask: Bitmap,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.size == other.size
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.size.cmp(&other.size)
    }
}

/// Finds the top-k largest unexplained subgroups (Algorithm 2).
///
/// `selected` are the indices of the explanation's attributes in `set`.
pub fn unexplained_subgroups(
    table: &Table,
    set: &CandidateSet,
    selected: &[usize],
    exclude: &[&str],
    options: &NexusOptions,
    sg: &SubgroupOptions,
) -> Result<Vec<Subgroup>> {
    let attrs = refinement_attrs(table, exclude, options)?;
    let explanation_rows: Vec<Codes> = selected
        .iter()
        .map(|&i| set.row_codes(&set.candidates[i]))
        .collect();

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let root_mask = set.mask.clone();
    push_children(
        &mut heap,
        &Node {
            size: root_mask.count_ones(),
            conditions: Vec::new(),
            mask: root_mask,
        },
        &attrs,
        sg,
    );

    let mut results: Vec<Subgroup> = Vec::new();
    let mut evaluations = 0usize;
    while let Some(node) = heap.pop() {
        if results.len() >= sg.k || evaluations >= sg.max_evaluations {
            break;
        }
        evaluations += 1;
        // Skip descendants of reported groups.
        if results.iter().any(|r| {
            r.conditions.iter().all(|(c, v)| {
                node.conditions.iter().any(|&(ai, code)| {
                    attrs[ai].name == *c && attrs[ai].labels[code as usize] == *v
                })
            })
        }) {
            continue;
        }
        let ctx = InfoContext::masked(&node.mask);
        let refs: Vec<&Codes> = explanation_rows.iter().collect();
        // Miller–Madow-corrected: small refinements must not look
        // unexplained through estimation bias alone.
        let score = ctx.cmi_mm(&set.o, &set.t, &refs);
        if score > sg.tau {
            results.push(Subgroup {
                conditions: node
                    .conditions
                    .iter()
                    .map(|&(ai, code)| {
                        (
                            attrs[ai].name.clone(),
                            attrs[ai].labels[code as usize].clone(),
                        )
                    })
                    .collect(),
                size: node.size,
                score,
            });
        } else if node.conditions.len() < sg.max_depth {
            push_children(&mut heap, &node, &attrs, sg);
        }
    }
    Ok(results)
}

/// Generates each child of `node` exactly once by only extending with
/// attributes beyond the last condition's attribute index.
fn push_children(
    heap: &mut BinaryHeap<Node>,
    node: &Node,
    attrs: &[RefineAttr],
    sg: &SubgroupOptions,
) {
    let start = node.conditions.last().map_or(0, |&(ai, _)| ai + 1);
    for (ai, attr) in attrs.iter().enumerate().skip(start) {
        for code in 0..attr.cardinality() {
            let mut mask = node.mask.clone();
            let mut size = 0usize;
            for i in 0..attr.codes.len() {
                if mask.get(i) {
                    if attr.codes.is_valid(i) && attr.codes.codes[i] == code {
                        size += 1;
                    } else {
                        mask.set(i, false);
                    }
                }
            }
            if size < sg.min_size {
                continue;
            }
            let mut conditions = node.conditions.clone();
            conditions.push((ai, code));
            heap.push(Node {
                size,
                conditions,
                mask,
            });
        }
    }
}

impl RefineAttr {
    fn cardinality(&self) -> u32 {
        self.codes.cardinality
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::build_candidates;
    use crate::engine::Engine;
    use crate::mcimr::mcimr;
    use nexus_kg::KnowledgeGraph;
    use nexus_query::parse;
    use nexus_table::Column;

    /// Salary = hdi everywhere except in Europe, where it's driven by gini
    /// (hdi constant there). Explanation {hdi} then leaves Europe
    /// unexplained.
    fn setup() -> (Table, KnowledgeGraph) {
        let mut countries = Vec::new();
        let mut continents = Vec::new();
        let mut salaries = Vec::new();
        let mut kg = KnowledgeGraph::new();
        for c in 0..12 {
            let name = format!("C{c:02}");
            let europe = c < 6;
            let hdi = if europe { 3.0 } else { (c % 4) as f64 };
            let gini = (c % 3) as f64;
            let id = kg.add_entity(name.clone(), "Country");
            kg.set_literal(id, "hdi", hdi);
            kg.set_literal(id, "gini", gini);
            for i in 0..40 {
                countries.push(name.clone());
                continents.push(if europe { "Europe" } else { "Asia" });
                salaries.push(if europe {
                    30.0 - 7.0 * gini + (i % 2) as f64 * 0.1
                } else {
                    10.0 * hdi + (i % 2) as f64 * 0.1
                });
            }
        }
        let table = Table::new(vec![
            ("Country", Column::from_strs(&countries)),
            ("Continent", Column::from_strs(&continents)),
            ("Salary", Column::from_f64(salaries)),
        ])
        .unwrap();
        (table, kg)
    }

    #[test]
    fn finds_europe_as_unexplained() {
        let (table, kg) = setup();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let options = NexusOptions::default();
        let set = build_candidates(&table, &kg, &["Country".to_string()], &q, &options).unwrap();
        let engine = Engine::new(&set);
        let hdi = set.index_of("Country::hdi").unwrap();
        // Force the explanation {hdi} as in the paper's Example 4.4.
        let _ = engine;
        let subgroups = unexplained_subgroups(
            &table,
            &set,
            &[hdi],
            &["Country", "Salary"],
            &options,
            &SubgroupOptions {
                tau: 0.2,
                ..SubgroupOptions::default()
            },
        )
        .unwrap();
        assert!(!subgroups.is_empty());
        let top = &subgroups[0];
        assert_eq!(top.conditions.len(), 1);
        assert_eq!(top.conditions[0].0, "Continent");
        assert_eq!(top.conditions[0].1, "Europe");
        assert!(top.score > 0.2);
        assert_eq!(top.size, 240);
        assert!(top.describe().contains("Continent == Europe"));
    }

    #[test]
    fn good_explanation_leaves_nothing_unexplained() {
        let (table, kg) = setup();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let options = NexusOptions::default();
        let set = build_candidates(&table, &kg, &["Country".to_string()], &q, &options).unwrap();
        let engine = Engine::new(&set);
        let r = mcimr(&set, &engine, &options);
        // MCIMR itself should find {hdi, gini}-ish sets that cover Europe.
        let subgroups = unexplained_subgroups(
            &table,
            &set,
            &r.selected,
            &["Country", "Salary"],
            &options,
            &SubgroupOptions {
                tau: 0.35,
                ..SubgroupOptions::default()
            },
        )
        .unwrap();
        assert!(
            subgroups.is_empty(),
            "unexpected subgroups: {:?}",
            subgroups.iter().map(|s| s.describe()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn evaluation_cap_bounds_work() {
        let (table, kg) = setup();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let options = NexusOptions::default();
        let set = build_candidates(&table, &kg, &["Country".to_string()], &q, &options).unwrap();
        let hdi = set.index_of("Country::hdi").unwrap();
        // With a 1-evaluation budget at most one group can be reported.
        let subgroups = unexplained_subgroups(
            &table,
            &set,
            &[hdi],
            &["Country", "Salary"],
            &options,
            &SubgroupOptions {
                max_evaluations: 1,
                tau: 0.0,
                min_size: 1,
                ..SubgroupOptions::default()
            },
        )
        .unwrap();
        assert!(subgroups.len() <= 1);
    }

    #[test]
    fn deeper_refinements_have_more_conditions() {
        let (table, kg) = setup();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let options = NexusOptions::default();
        let set = build_candidates(&table, &kg, &["Country".to_string()], &q, &options).unwrap();
        let hdi = set.index_of("Country::hdi").unwrap();
        let subgroups = unexplained_subgroups(
            &table,
            &set,
            &[hdi],
            &["Country", "Salary"],
            &options,
            &SubgroupOptions {
                tau: 0.2,
                max_depth: 2,
                min_size: 10,
                ..SubgroupOptions::default()
            },
        )
        .unwrap();
        for s in &subgroups {
            assert!(!s.conditions.is_empty());
            assert!(s.conditions.len() <= 2);
            assert!(s.size >= 10);
        }
    }

    #[test]
    fn respects_min_size_and_k() {
        let (table, kg) = setup();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let options = NexusOptions::default();
        let set = build_candidates(&table, &kg, &["Country".to_string()], &q, &options).unwrap();
        let hdi = set.index_of("Country::hdi").unwrap();
        let subgroups = unexplained_subgroups(
            &table,
            &set,
            &[hdi],
            &["Country", "Salary"],
            &options,
            &SubgroupOptions {
                k: 1,
                tau: 0.0,
                min_size: 1_000_000,
                ..SubgroupOptions::default()
            },
        )
        .unwrap();
        // Nothing is large enough.
        assert!(subgroups.is_empty());
    }
}
