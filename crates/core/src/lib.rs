//! # nexus-core
//!
//! The core of NEXUS, a reproduction of SIGMOD 2023 *"On Explaining
//! Confounding Bias"*: given an aggregate SQL query whose result shows an
//! unexpected correlation between a grouping attribute `T` (exposure) and
//! an aggregated attribute `O` (outcome), find the set of confounding
//! attributes — mined from the input table *and* a knowledge graph — that
//! explains the correlation away (minimizes `I(O;T|E,C)`).
//!
//! The crate implements:
//!
//! * candidate assembly from base-table columns and multi-hop KG extraction
//!   ([`build_candidates`]),
//! * the contingency-table estimation [`Engine`] that scores hundreds of
//!   candidates without rescanning millions of rows,
//! * offline/online pruning ([`prune_offline`], [`prune_online`]),
//! * selection-bias detection + entity-level IPW weighting,
//! * the **MCIMR** greedy selection algorithm with the responsibility-test
//!   stopping criterion ([`mcimr()`]),
//! * degree-of-responsibility scores ([`responsibilities`]),
//! * top-k unexplained subgroup discovery ([`unexplained_subgroups`]), and
//! * the end-to-end [`Nexus`] pipeline facade.
//!
//! ## Example
//!
//! ```
//! use nexus_core::{ExplainRequest, Nexus, NexusOptions};
//! use nexus_kg::KnowledgeGraph;
//! use nexus_query::parse;
//! use nexus_table::{Column, Table};
//!
//! // Salary is driven by each country's development level, which lives in
//! // the KG, not in the queried table.
//! let mut kg = KnowledgeGraph::new();
//! let mut countries = Vec::new();
//! let mut salaries = Vec::new();
//! for c in 0..9 {
//!     let name = format!("C{c}");
//!     let id = kg.add_entity(name.clone(), "Country");
//!     kg.set_literal(id, "hdi", (c % 3) as f64);
//!     for i in 0..30 {
//!         countries.push(name.clone());
//!         salaries.push(10.0 * (c % 3) as f64 + (i % 2) as f64 * 0.1);
//!     }
//! }
//! let table = Table::new(vec![
//!     ("Country", Column::from_strs(&countries)),
//!     ("Salary", Column::from_f64(salaries)),
//! ]).unwrap();
//!
//! let query = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
//! let request = ExplainRequest::new()
//!     .table(&table)
//!     .knowledge_graph(&kg)
//!     .extraction_column("Country")
//!     .query(&query);
//! let explanation = Nexus::default().run(&request).unwrap();
//! assert!(explanation.names().contains(&"Country::hdi"));
//! assert!(explanation.explained_fraction() > 0.9);
//! # let _ = NexusOptions::default();
//! ```

#![warn(missing_docs)]

pub mod candidate;
pub mod control;
pub mod engine;
pub mod error;
pub mod mcimr;
pub mod memo;
pub mod options;
pub mod pipeline;
pub mod prune;
pub mod responsibility;
pub mod shard;
pub mod subgroups;

pub use candidate::{
    assemble_candidates, build_candidates, extract_column, BiasSummary, Candidate, CandidateRepr,
    CandidateSet, CandidateSource, ColumnExtraction, MISSING_CODE,
};
pub use control::{ProgressEvent, RunControl};
pub use engine::{CandStats, Engine};
pub use error::{CoreError, Result};
pub use mcimr::{mcimr, mcimr_controlled, IterationTrace, McimrResult};
pub use memo::{
    codes_fingerprint, set_fingerprint, weights_fingerprint, MemoHandle, MemoKey, MemoStore,
};
pub use nexus_info::{KernelMode, KernelSnapshot, MemoKind};
pub use nexus_runtime::{Parallelism, PoolMetrics, ThreadPool};
pub use options::{NexusOptions, NexusOptionsBuilder};
pub use pipeline::{
    apply_selection_bias_weights, ExplainRequest, Explanation, Nexus, PipelineStats, RunArtifacts,
    SelectedAttribute,
};
pub use prune::{prune_offline, prune_online, PruneReason, PruneReport};
pub use responsibility::responsibilities;
pub use subgroups::{unexplained_subgroups, Subgroup, SubgroupOptions};
