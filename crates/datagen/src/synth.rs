//! SYN: region-blocked synthetic workloads for the kernel v2 benchmarks.
//!
//! Unlike the four paper datasets (which reproduce Table 1's shapes), this
//! generator is a **kernel stress fixture**: a tall, narrow table whose
//! layout mirrors how operational exports actually arrive — rows blocked
//! by region and segment, measurements repeating across short bursts
//! (per-day per-region aggregates). That layout is exactly what the v2
//! counting kernel exploits:
//!
//! * **narrow code columns** — few regions × six outcome bins keeps the
//!   fused `(T, O)` key space within `u8`;
//! * **run coalescing** — region, segment, and burst-constant outcomes
//!   give long equal-key runs, so dense accumulator writes collapse far
//!   below rows scanned;
//! * **packed-mask word skips** — a `WHERE Segment = …` context selects
//!   contiguous chunks, so most selection words are all-zero and the scan
//!   skips them whole;
//! * **radix-partitioned merges** — at 10M+ rows the parallel spans merge
//!   touched histogram blocks only.
//!
//! The planted structure keeps the workload semantically honest: each
//! region has a hidden `capacity index` that drives the outcome, so the
//! Region → Outcome association is a textbook confounder the pipeline can
//! explain away. The `bias: true` variant drops `capacity index` from the
//! highest-capacity regions — coverage correlated with the outcome — which
//! trips the pipeline's selection-bias detector and routes builds through
//! the weighted (IPW) kernel paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nexus_kg::{EntityId, KnowledgeGraph};
use nexus_table::{Column, Table};

use crate::noise::{add_noise_properties, add_rank_copy, NoiseConfig};
use crate::rng::normal_with;
use crate::Dataset;

/// Configuration for the synthetic kernel workload generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of rows (benchmarks default to 10M; tests use far fewer).
    pub n_rows: usize,
    /// Number of regions (the extraction / group-by column). Keep small:
    /// `n_regions × 6` outcome bins must stay ≤ 256 for u8 fused scans.
    pub n_regions: usize,
    /// Number of segments (the WHERE column of the masked variant).
    pub n_segments: usize,
    /// RNG seed.
    pub seed: u64,
    /// Drop `capacity index` from the highest-capacity regions, planting
    /// outcome-correlated coverage that triggers IPW weighting.
    pub bias: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_rows: 10_000_000,
            n_regions: 24,
            n_segments: 4,
            seed: 0x5A17_B10C,
            bias: false,
        }
    }
}

/// The plain region query (SYN-B1, SYN-W1).
pub const SYN_Q_PLAIN: &str = "SELECT Region, avg(Outcome) FROM Synth GROUP BY Region";

/// The masked region query (SYN-M1): one segment's contiguous chunks.
pub const SYN_Q_MASKED: &str =
    "SELECT Region, avg(Outcome) FROM Synth WHERE Segment = 'SEG_00' GROUP BY Region";

/// One benchmark workload over the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SynthWorkload {
    /// Workload id (`SYN-…`), used by `bench-explain --query`.
    pub id: &'static str,
    /// The explain query.
    pub sql: &'static str,
    /// Whether the generator plants selection bias (IPW variant).
    pub bias: bool,
    /// One-line description for reports.
    pub description: &'static str,
}

/// The shipped synthetic workloads. Deliberately **not** part of
/// [`crate::BENCH_QUERIES`] (that list mirrors the paper's Table 5 and is
/// pinned by tests); the bench harness dispatches on the `SYN-` prefix.
pub const SYNTH_WORKLOADS: &[SynthWorkload] = &[
    SynthWorkload {
        id: "SYN-B1",
        sql: SYN_Q_PLAIN,
        bias: false,
        description: "region-blocked planted confounder, full table",
    },
    SynthWorkload {
        id: "SYN-W1",
        sql: SYN_Q_PLAIN,
        bias: true,
        description: "outcome-correlated coverage gap; IPW-weighted builds",
    },
    SynthWorkload {
        id: "SYN-M1",
        sql: SYN_Q_MASKED,
        bias: false,
        description: "one-segment WHERE context; packed-mask word skips",
    },
];

/// Generates the synthetic region-blocked dataset.
pub fn generate(config: &SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_regions = config.n_regions.max(2);
    let n_segments = config.n_segments.max(2);

    // Hidden per-region confounder: capacity drives the outcome level.
    let capacity: Vec<f64> = (0..n_regions).map(|_| rng.gen::<f64>()).collect();
    let region_names: Vec<String> = (0..n_regions).map(|r| format!("Region_{r:02}")).collect();
    let segment_names: Vec<String> = (0..n_segments).map(|s| format!("SEG_{s:02}")).collect();
    let segment_shift: Vec<f64> = (0..n_segments)
        .map(|_| normal_with(&mut rng, 0.0, 1.5))
        .collect();

    let n = config.n_rows;
    let mut col_region: Vec<&str> = Vec::with_capacity(n);
    let mut col_segment: Vec<&str> = Vec::with_capacity(n);
    let mut col_outcome: Vec<f64> = Vec::with_capacity(n);

    // Region-major, segment-minor blocked layout: each (region, segment)
    // pair owns one contiguous chunk, as in a per-region export
    // concatenation. Within a chunk the measurement repeats across short
    // bursts (per-day aggregates), giving the equal-key runs the kernel's
    // coalescing is built for.
    let n_chunks = n_regions * n_segments;
    for chunk in 0..n_chunks {
        let r = chunk / n_segments;
        let s = chunk % n_segments;
        let start = chunk * n / n_chunks;
        let end = (chunk + 1) * n / n_chunks;
        let level = 10.0 + 30.0 * capacity[r] + segment_shift[s];
        let mut i = start;
        while i < end {
            let burst = (8 + rng.gen_range(0..56)).min(end - i);
            let value = (normal_with(&mut rng, level, 4.0) * 10.0).round() / 10.0;
            for _ in 0..burst {
                col_region.push(&region_names[r]);
                col_segment.push(&segment_names[s]);
                col_outcome.push(value);
            }
            i += burst;
        }
    }

    let table = Table::new(vec![
        ("Region", Column::from_strs(&col_region)),
        ("Segment", Column::from_strs(&col_segment)),
        ("Outcome", Column::from_f64(col_outcome)),
    ])
    .expect("columns share one length");

    let mut kg = KnowledgeGraph::new();
    add_region_entities(&mut kg, &region_names, &capacity, config.bias, &mut rng);

    Dataset {
        name: "Synth",
        table,
        kg,
        extraction_columns: vec!["Region".into()],
        outcome_columns: vec!["Outcome".into()],
    }
}

fn add_region_entities(
    kg: &mut KnowledgeGraph,
    names: &[String],
    capacity: &[f64],
    bias: bool,
    rng: &mut StdRng,
) {
    let ids: Vec<EntityId> = names
        .iter()
        .map(|name| kg.add_entity(name.clone(), "Region"))
        .collect();

    // The biased variant drops `capacity index` from the top-capacity
    // third of regions: the property's coverage then correlates with the
    // outcome level, which is exactly the missing-not-at-random pattern
    // the pipeline's IPW stage detects and reweights.
    let bias_cut = if bias {
        let mut sorted: Vec<f64> = capacity.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        sorted[sorted.len() - sorted.len() / 3]
    } else {
        f64::INFINITY
    };

    for (&id, &cap) in ids.iter().zip(capacity) {
        if cap < bias_cut {
            kg.set_literal(id, "capacity index", (100.0 * cap).round());
        }
        // Correlated proxy with its own noise (redundancy fodder).
        kg.set_literal(
            id,
            "throughput",
            (50.0 + 200.0 * cap + normal_with(rng, 0.0, 12.0)).round(),
        );
        kg.set_literal(
            id,
            "tier",
            format!("tier{}", (cap * 3.0).floor().min(2.0) as i64),
        );
    }
    add_rank_copy(kg, &ids, "throughput");

    // A small haystack — the workload's point is kernel shape, not
    // candidate pruning, so the attribute count stays in the low teens.
    let noise = NoiseConfig {
        n_numeric: 8,
        n_categorical: 3,
        n_constant: 1,
        n_unique: 1,
        prefix: "region".into(),
        missing_range: (0.0, 0.25),
        ..NoiseConfig::default()
    };
    add_noise_properties(kg, &ids, &noise, rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(bias: bool) -> Dataset {
        generate(&SynthConfig {
            n_rows: 30_000,
            bias,
            ..SynthConfig::default()
        })
    }

    #[test]
    fn schema_and_blocked_layout() {
        let d = small(false);
        assert_eq!(d.table.n_rows(), 30_000);
        assert_eq!(d.extraction_columns, vec!["Region".to_string()]);
        // Region-major blocks: the column is a concatenation of runs, so
        // the number of value changes is the number of chunks, not rows.
        let region = d.table.column("Region").unwrap();
        let changes = (1..d.table.n_rows())
            .filter(|&i| region.str_at(i) != region.str_at(i - 1))
            .count();
        assert_eq!(changes, 24 - 1, "Region must be block-contiguous");
    }

    #[test]
    fn confounder_drives_outcome() {
        let d = small(false);
        let linker = nexus_kg::EntityLinker::new(&d.kg);
        let (links, _) = linker.link_column(d.table.column("Region").unwrap());
        let outcome = d.table.column("Outcome").unwrap();
        let (mut hi, mut lo) = ((0.0, 0usize), (0.0, 0usize));
        for (i, l) in links.iter().enumerate() {
            let Some(id) = l else { continue };
            let Some(nexus_kg::PropertyValue::Literal(v)) = d.kg.property(*id, "capacity index")
            else {
                continue;
            };
            let cap = v.as_f64().unwrap();
            let o = outcome.f64_at(i).unwrap();
            if cap > 70.0 {
                hi.0 += o;
                hi.1 += 1;
            } else if cap < 30.0 {
                lo.0 += o;
                lo.1 += 1;
            }
        }
        let (hi_avg, lo_avg) = (hi.0 / hi.1 as f64, lo.0 / lo.1 as f64);
        assert!(hi_avg > lo_avg + 8.0, "hi={hi_avg} lo={lo_avg}");
    }

    #[test]
    fn bias_variant_drops_top_capacity_coverage() {
        let unbiased = small(false);
        let biased = small(true);
        let coverage = |d: &Dataset| {
            d.kg.entities_of_class("Region")
                .into_iter()
                .filter(|&id| d.kg.property(id, "capacity index").is_some())
                .count()
        };
        assert_eq!(coverage(&unbiased), 24);
        let covered = coverage(&biased);
        assert!(
            (12..24).contains(&covered),
            "biased coverage should lose the top third: {covered}/24"
        );
    }

    #[test]
    fn masked_query_selects_contiguous_chunks() {
        let d = small(false);
        let segment = d.table.column("Segment").unwrap();
        let selected = (0..d.table.n_rows())
            .filter(|&i| segment.str_at(i) == Some("SEG_00"))
            .count();
        // One of four segments, spread over one chunk per region.
        let frac = selected as f64 / d.table.n_rows() as f64;
        assert!((0.2..=0.3).contains(&frac), "SEG_00 fraction {frac}");
    }

    #[test]
    fn workload_ids_are_distinct_and_syn_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for w in SYNTH_WORKLOADS {
            assert!(w.id.starts_with("SYN-"), "{}", w.id);
            assert!(seen.insert(w.id));
        }
    }
}
