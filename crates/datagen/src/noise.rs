//! Distractor properties for synthetic knowledge graphs.
//!
//! Real KGs bury the handful of relevant attributes under hundreds of
//! irrelevant ones (Table 1 reports 461–708 extracted attributes per
//! dataset). This module plants that haystack: independent numeric and
//! categorical noise, constant attributes, unique identifiers, redundant
//! rank-copies, and realistic missingness (random and value-dependent).

use rand::rngs::StdRng;
use rand::Rng;

use nexus_kg::{EntityId, KnowledgeGraph};
use nexus_table::Value;

use crate::rng::normal_with;

/// Configuration of the distractor haystack for one entity class.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Number of independent numeric noise properties.
    pub n_numeric: usize,
    /// Number of independent categorical noise properties.
    pub n_categorical: usize,
    /// Number of constant-valued properties (pruning fodder).
    pub n_constant: usize,
    /// Number of unique-identifier properties (high-entropy pruning fodder).
    pub n_unique: usize,
    /// Range of per-property missing fractions, sampled uniformly.
    pub missing_range: (f64, f64),
    /// Fraction of numeric noise properties whose missingness is
    /// value-dependent (missing-not-at-random: high values dropped).
    pub mnar_fraction: f64,
    /// Prefix for generated property names.
    pub prefix: String,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            n_numeric: 60,
            n_categorical: 20,
            n_constant: 3,
            n_unique: 2,
            missing_range: (0.1, 0.6),
            mnar_fraction: 0.2,
            prefix: "attr".into(),
        }
    }
}

impl NoiseConfig {
    /// Total number of properties this configuration generates.
    pub fn total(&self) -> usize {
        self.n_numeric + self.n_categorical + self.n_constant + self.n_unique
    }
}

/// Adds distractor properties to `entities` in `kg`.
pub fn add_noise_properties(
    kg: &mut KnowledgeGraph,
    entities: &[EntityId],
    config: &NoiseConfig,
    rng: &mut StdRng,
) {
    // Numeric noise (possibly MNAR). Per-property missing fractions follow
    // a mixture: most properties are moderately sparse, a tail is nearly
    // empty (real KGs have many such properties — they are what the
    // offline >90%-missing filter exists for).
    for p in 0..config.n_numeric {
        let name = format!("{}_num_{p:03}", config.prefix);
        let missing: f64 = if rng.gen::<f64>() < 0.35 {
            rng.gen_range(0.905..0.995)
        } else {
            rng.gen_range(config.missing_range.0..=config.missing_range.1)
        };
        let mnar = rng.gen::<f64>() < config.mnar_fraction;
        let scale = 10f64.powi(rng.gen_range(0..5));
        // Pre-sample values; under MNAR the drop probability grows with the
        // value's rank (soft selection — high values are under-observed but
        // every stratum keeps some coverage, as in real KG sparsity).
        let values: Vec<f64> = entities
            .iter()
            .map(|_| normal_with(rng, scale, scale / 3.0))
            .collect();
        let ranks: Vec<usize> = {
            let mut idx: Vec<usize> = (0..values.len()).collect();
            idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
            let mut r = vec![0usize; values.len()];
            for (rank, &i) in idx.iter().enumerate() {
                r[i] = rank;
            }
            r
        };
        let n = entities.len().max(2);
        let mut any = false;
        for ((&e, &v), &rank) in entities.iter().zip(&values).zip(&ranks) {
            let p_drop = if mnar {
                (missing * 2.0 * rank as f64 / (n - 1) as f64).min(0.95)
            } else {
                missing
            };
            if rng.gen::<f64>() >= p_drop {
                kg.set_literal(e, &name, v);
                any = true;
            }
        }
        // A property that exists at all exists for someone.
        if !any {
            let e = entities[rng.gen_range(0..entities.len())];
            kg.set_literal(e, &name, values[0]);
        }
    }

    // Categorical noise.
    for p in 0..config.n_categorical {
        let name = format!("{}_cat_{p:03}", config.prefix);
        let card = rng.gen_range(2..12usize);
        let missing: f64 = if rng.gen::<f64>() < 0.35 {
            rng.gen_range(0.905..0.995)
        } else {
            rng.gen_range(config.missing_range.0..=config.missing_range.1)
        };
        let mut any = false;
        for &e in entities {
            if rng.gen::<f64>() >= missing {
                let v = rng.gen_range(0..card);
                kg.set_literal(e, &name, format!("cat{v}"));
                any = true;
            }
        }
        if !any {
            let e = entities[rng.gen_range(0..entities.len())];
            kg.set_literal(e, &name, "cat0");
        }
    }

    // Constant properties: same value everywhere (e.g. rdf:type).
    for p in 0..config.n_constant {
        let name = format!("{}_const_{p:02}", config.prefix);
        for &e in entities {
            kg.set_literal(e, &name, format!("{}_kind", config.prefix));
        }
    }

    // Unique identifiers (wikiID-style).
    for p in 0..config.n_unique {
        let name = format!("{}_id_{p:02}", config.prefix);
        for (i, &e) in entities.iter().enumerate() {
            kg.set_property(
                e,
                &name,
                nexus_kg::PropertyValue::Literal(Value::Str(format!("Q{}{i:06}", p + 1))),
            );
        }
    }
}

/// Adds a `"{name} rank"` property that is the dense rank of an existing
/// numeric property — the redundant-copy pattern (HDI vs HDI Rank) the
/// paper's Min-Redundancy criterion must handle.
pub fn add_rank_copy(kg: &mut KnowledgeGraph, entities: &[EntityId], of_property: &str) {
    let mut values: Vec<(usize, f64)> = Vec::new();
    for (i, &e) in entities.iter().enumerate() {
        if let Some(nexus_kg::PropertyValue::Literal(v)) = kg.property(e, of_property) {
            if let Some(x) = v.as_f64() {
                values.push((i, x));
            }
        }
    }
    // Higher value -> rank 1.
    values.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let name = format!("{of_property} rank");
    for (rank, (i, _)) in values.into_iter().enumerate() {
        kg.set_literal(entities[i], &name, (rank + 1) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn noise_counts_and_missingness() {
        let mut kg = KnowledgeGraph::new();
        let entities: Vec<EntityId> = (0..50)
            .map(|i| kg.add_entity(format!("e{i}"), "X"))
            .collect();
        let cfg = NoiseConfig {
            n_numeric: 10,
            n_categorical: 5,
            n_constant: 2,
            n_unique: 1,
            missing_range: (0.2, 0.4),
            mnar_fraction: 0.3,
            prefix: "t".into(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        add_noise_properties(&mut kg, &entities, &cfg, &mut rng);
        assert_eq!(kg.n_properties(), cfg.total());
        // Constants are fully populated; numeric properties have gaps.
        let n_const = entities
            .iter()
            .filter(|&&e| kg.property(e, "t_const_00").is_some())
            .count();
        assert_eq!(n_const, 50);
        let n_num: usize = entities
            .iter()
            .filter(|&&e| kg.property(e, "t_num_000").is_some())
            .count();
        assert!(n_num < 50 && n_num > 10, "n_num={n_num}");
    }

    #[test]
    fn unique_ids_are_unique() {
        let mut kg = KnowledgeGraph::new();
        let entities: Vec<EntityId> = (0..20)
            .map(|i| kg.add_entity(format!("e{i}"), "X"))
            .collect();
        let cfg = NoiseConfig {
            n_numeric: 0,
            n_categorical: 0,
            n_constant: 0,
            n_unique: 1,
            prefix: "t".into(),
            ..NoiseConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        add_noise_properties(&mut kg, &entities, &cfg, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for &e in &entities {
            if let Some(nexus_kg::PropertyValue::Literal(Value::Str(s))) = kg.property(e, "t_id_00")
            {
                assert!(seen.insert(s.clone()));
            } else {
                panic!("missing id");
            }
        }
    }

    #[test]
    fn rank_copy_is_monotone() {
        let mut kg = KnowledgeGraph::new();
        let entities: Vec<EntityId> = (0..5)
            .map(|i| kg.add_entity(format!("e{i}"), "X"))
            .collect();
        for (i, &e) in entities.iter().enumerate() {
            kg.set_literal(e, "hdi", i as f64 / 10.0);
        }
        add_rank_copy(&mut kg, &entities, "hdi");
        // Highest hdi (entity 4) gets rank 1.
        match kg.property(entities[4], "hdi rank") {
            Some(nexus_kg::PropertyValue::Literal(Value::Int(r))) => assert_eq!(*r, 1),
            other => panic!("unexpected {other:?}"),
        }
        match kg.property(entities[0], "hdi rank") {
            Some(nexus_kg::PropertyValue::Literal(Value::Int(r))) => assert_eq!(*r, 5),
            other => panic!("unexpected {other:?}"),
        }
    }
}
