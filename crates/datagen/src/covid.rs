//! The synthetic Covid-19 dataset.
//!
//! Matches the paper's Covid dataset (Table 1): 188 rows (one per country),
//! extraction columns `Country` and `WHO-Region`, ~463 extractable
//! attributes. Planted structure (following the findings the paper cites):
//!
//! * country development (HDI) and wealth (GDP) **reduce** the death rate;
//! * confirmed-case load (a base-table column) **increases** it;
//! * inequality (Gini) and population add smaller penalties — the
//!   within-Europe signal, where HDI is nearly constant;
//! * density drives the region-level differences.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nexus_table::{Column, Table};

use crate::geo::{add_country_entities, add_who_region_entities, gen_countries, Country};
use crate::noise::NoiseConfig;
use crate::rng::normal_with;
use crate::Dataset;

/// Configuration for the Covid generator.
#[derive(Debug, Clone)]
pub struct CovidConfig {
    /// Number of countries (rows).
    pub n_countries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CovidConfig {
    fn default() -> Self {
        CovidConfig {
            n_countries: 188,
            seed: 0xC0_51D,
        }
    }
}

/// The planted death-rate model (deaths per 100 cases).
pub fn expected_death_rate(c: &Country, confirmed_per_capita: f64) -> f64 {
    7.5 - 6.0 * c.econ - 2.5 * c.wealth
        + 2.0 * confirmed_per_capita
        + 0.35 * (c.gini - 40.0) / 10.0
        + 0.5 * (c.population.log10() - 7.25) * 0.4
        + 0.25 * (c.density.log10().clamp(-1.0, 3.5))
}

/// Generates the Covid dataset.
pub fn generate(config: &CovidConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let countries = gen_countries(config.n_countries, &mut rng);

    let n = countries.len();
    let mut col_country = Vec::with_capacity(n);
    let mut col_region = Vec::with_capacity(n);
    let mut col_confirmed = Vec::with_capacity(n);
    let mut col_deaths_rate = Vec::with_capacity(n);
    let mut col_recovered = Vec::with_capacity(n);
    let mut col_active = Vec::with_capacity(n);
    let mut col_new = Vec::with_capacity(n);

    for c in &countries {
        // Case load grows with density and population; per-capita load used
        // in the death model.
        let per_capita = (0.002
            * (1.0 + c.density.log10().clamp(-1.0, 3.5))
            * (0.5 + normal_with(&mut rng, 0.5, 0.15).clamp(0.05, 1.5)))
        .max(1e-5);
        let confirmed = (c.population * per_capita).round().max(10.0);
        let rate = (expected_death_rate(c, per_capita * 500.0) + normal_with(&mut rng, 0.0, 0.25))
            .clamp(0.05, 25.0);
        let recovered = (confirmed * normal_with(&mut rng, 0.6, 0.1).clamp(0.2, 0.95)).round();
        let active = (confirmed - recovered - confirmed * rate / 100.0)
            .max(0.0)
            .round();
        let newc = (confirmed * normal_with(&mut rng, 0.01, 0.004).clamp(0.0, 0.05)).round();

        col_country.push(c.name.clone());
        col_region.push(c.who_region.clone());
        col_confirmed.push(confirmed);
        col_deaths_rate.push(rate);
        col_recovered.push(recovered);
        col_active.push(active);
        col_new.push(newc);
    }

    let table = Table::new(vec![
        ("Country", Column::from_strs(&col_country)),
        ("WHO_Region", Column::from_strs(&col_region)),
        ("Confirmed_cases", Column::from_f64(col_confirmed)),
        ("Deaths_per_100_cases", Column::from_f64(col_deaths_rate)),
        ("Recovered_cases", Column::from_f64(col_recovered)),
        ("Active_cases", Column::from_f64(col_active)),
        ("New_cases", Column::from_f64(col_new)),
    ])
    .expect("columns share one length");

    let mut kg = nexus_kg::KnowledgeGraph::new();
    let country_noise = NoiseConfig {
        n_numeric: 280,
        n_categorical: 90,
        n_constant: 4,
        n_unique: 2,
        prefix: "country".into(),
        ..NoiseConfig::default()
    };
    add_country_entities(&mut kg, &countries, &country_noise, &mut rng);
    let region_noise = NoiseConfig {
        n_numeric: 48,
        n_categorical: 18,
        n_constant: 2,
        n_unique: 1,
        prefix: "region".into(),
        ..NoiseConfig::default()
    };
    add_who_region_entities(&mut kg, &countries, &region_noise, &mut rng);

    Dataset {
        name: "Covid-19",
        table,
        kg,
        extraction_columns: vec!["Country".into(), "WHO_Region".into()],
        outcome_columns: vec![
            "Deaths_per_100_cases".into(),
            "New_cases".into(),
            "Active_cases".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_country() {
        let d = generate(&CovidConfig::default());
        assert_eq!(d.table.n_rows(), 188);
        assert_eq!(d.table.column("Country").unwrap().distinct_count(), 188);
    }

    #[test]
    fn death_rate_falls_with_development() {
        let d = generate(&CovidConfig::default());
        let region = d.table.column("WHO_Region").unwrap();
        let rate = d.table.column("Deaths_per_100_cases").unwrap();
        let avg = |r: &str| {
            let mut s = 0.0;
            let mut n = 0usize;
            for i in 0..d.table.n_rows() {
                if region.str_at(i) == Some(r) {
                    s += rate.f64_at(i).unwrap();
                    n += 1;
                }
            }
            s / n.max(1) as f64
        };
        // AFRO countries (low econ) fare worse than EURO.
        assert!(
            avg("AFRO") > avg("EURO") + 1.0,
            "afro={} euro={}",
            avg("AFRO"),
            avg("EURO")
        );
    }

    #[test]
    fn kg_attribute_count_near_table1() {
        let d = generate(&CovidConfig::default());
        let total = d.kg.n_properties();
        assert!(
            (440..=505).contains(&total),
            "expected ≈463 properties, got {total}"
        );
    }

    #[test]
    fn all_countries_link() {
        let d = generate(&CovidConfig::default());
        let linker = nexus_kg::EntityLinker::new(&d.kg);
        let (_, stats) = linker.link_column(d.table.column("Country").unwrap());
        assert!(stats.link_rate() > 0.95, "{stats:?}");
    }
}
