//! The synthetic Stack Overflow developer-survey dataset.
//!
//! Matches the paper's SO dataset (Table 1): 47,623 rows, extraction columns
//! `Country` and `Continent`, ~461 extractable attributes. The planted
//! causal structure:
//!
//! * country development (`econ`) → HDI and the bulk of salary;
//! * country inequality (`gini`) → a salary penalty;
//! * country population → a scarcity premium for small countries (the
//!   within-Europe signal, since Europe's `econ` is nearly constant);
//! * continent-level GDP / population totals → the continent-query signal;
//! * gender → an individual-level salary gap (a base-table confounder for
//!   queries grouped by non-country attributes, and a distractor otherwise).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nexus_table::{Column, Table};

use crate::geo::{add_continent_entities, add_country_entities, gen_countries, Country};
use crate::noise::NoiseConfig;
use crate::rng::{normal_with, weighted_index};
use crate::Dataset;

/// Configuration for the SO generator.
#[derive(Debug, Clone)]
pub struct SoConfig {
    /// Number of survey rows.
    pub n_rows: usize,
    /// Number of countries.
    pub n_countries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of rows whose country string is misspelled (link failure).
    pub typo_fraction: f64,
}

impl Default for SoConfig {
    fn default() -> Self {
        SoConfig {
            n_rows: 47_623,
            n_countries: 188,
            seed: 0x50_2023,
            typo_fraction: 0.02,
        }
    }
}

const DEV_TYPES: &[(&str, f64)] = &[
    ("fullstack", 0.0),
    ("backend", 2_000.0),
    ("frontend", -1_000.0),
    ("data", 5_000.0),
    ("manager", 15_000.0),
    ("embedded", 3_000.0),
];

/// Salary model shared with tests: the expected salary of a developer.
pub fn expected_salary(c: &Country, female: bool, dev_type_effect: f64, years: i64) -> f64 {
    12_000.0 + 75_000.0 * c.econ
        - 1_200.0 * (c.gini - 40.0)
        - 7_000.0 * (c.population.log10() - 7.25)
        + if female { -8_000.0 } else { 0.0 }
        + dev_type_effect
        + 250.0 * (years as f64 - 10.0)
}

/// Generates the SO dataset.
pub fn generate(config: &SoConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let countries = gen_countries(config.n_countries, &mut rng);

    // Survey participation weights: developed + populous countries dominate.
    let weights: Vec<f64> = countries
        .iter()
        .map(|c| (c.population.powf(0.4)) * (0.2 + c.econ))
        .collect();

    let n = config.n_rows;
    let mut col_country = Vec::with_capacity(n);
    let mut col_continent = Vec::with_capacity(n);
    let mut col_gender = Vec::with_capacity(n);
    let mut col_age = Vec::with_capacity(n);
    let mut col_devtype = Vec::with_capacity(n);
    let mut col_hobby = Vec::with_capacity(n);
    let mut col_years = Vec::with_capacity(n);
    let mut col_salary = Vec::with_capacity(n);

    for _ in 0..n {
        let ci = weighted_index(&mut rng, &weights);
        let c = &countries[ci];
        let female = rng.gen::<f64>() < 0.22;
        let age = rng.gen_range(18..65i64);
        let years = ((age - 18) as f64 * rng.gen::<f64>()).round() as i64;
        let (dev_type, dt_effect) = DEV_TYPES[rng.gen_range(0..DEV_TYPES.len())];
        let hobby = rng.gen::<f64>() < 0.6;
        let salary = (expected_salary(c, female, dt_effect, years)
            + normal_with(&mut rng, 0.0, 7_000.0))
        .max(3_000.0);

        // Surface form: canonical, official alias, or a typo.
        let surface = if rng.gen::<f64>() < config.typo_fraction {
            let mut s = c.name.clone();
            s.insert(2, 'x');
            s
        } else if c.alias.is_some() && rng.gen::<f64>() < 0.3 {
            c.alias.clone().expect("checked")
        } else {
            c.name.clone()
        };
        col_country.push(surface);
        col_continent.push(c.continent.clone());
        col_gender.push(if female { "f" } else { "m" });
        col_age.push(age);
        col_devtype.push(dev_type);
        col_hobby.push(hobby);
        col_years.push(years);
        col_salary.push(salary);
    }

    let table = Table::new(vec![
        ("Country", Column::from_strs(&col_country)),
        ("Continent", Column::from_strs(&col_continent)),
        ("Gender", Column::from_strs(&col_gender)),
        ("Age", Column::from_i64(col_age)),
        ("DevType", Column::from_strs(&col_devtype)),
        ("Hobby", Column::from_bools(col_hobby)),
        ("YearsCode", Column::from_i64(col_years)),
        ("Salary", Column::from_f64(col_salary)),
    ])
    .expect("columns share one length");

    // Knowledge graph: countries + continents, with the distractor haystack
    // sized so total extractable attributes ≈ 461 (Table 1).
    let mut kg = nexus_kg::KnowledgeGraph::new();
    let country_noise = NoiseConfig {
        n_numeric: 280,
        n_categorical: 90,
        n_constant: 4,
        n_unique: 2,
        prefix: "country".into(),
        ..NoiseConfig::default()
    };
    add_country_entities(&mut kg, &countries, &country_noise, &mut rng);
    let continent_noise = NoiseConfig {
        n_numeric: 45,
        n_categorical: 18,
        n_constant: 2,
        n_unique: 1,
        prefix: "continent".into(),
        ..NoiseConfig::default()
    };
    add_continent_entities(&mut kg, &countries, &continent_noise, &mut rng);

    Dataset {
        name: "SO",
        table,
        kg,
        extraction_columns: vec!["Country".into(), "Continent".into()],
        outcome_columns: vec!["Salary".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate(&SoConfig {
            n_rows: 3_000,
            n_countries: 60,
            seed: 7,
            typo_fraction: 0.02,
        })
    }

    #[test]
    fn schema_and_size() {
        let d = small();
        assert_eq!(d.table.n_rows(), 3_000);
        assert_eq!(
            d.table.column_names(),
            vec![
                "Country",
                "Continent",
                "Gender",
                "Age",
                "DevType",
                "Hobby",
                "YearsCode",
                "Salary"
            ]
        );
        assert_eq!(d.extraction_columns, vec!["Country", "Continent"]);
    }

    #[test]
    fn salary_confounded_by_country_economy() {
        let d = small();
        // Group mean salary by continent: Europe far above Africa.
        let avg = |continent: &str| {
            let cont = d.table.column("Continent").unwrap();
            let sal = d.table.column("Salary").unwrap();
            let mut s = 0.0;
            let mut n = 0usize;
            for i in 0..d.table.n_rows() {
                if cont.str_at(i) == Some(continent) {
                    s += sal.f64_at(i).unwrap();
                    n += 1;
                }
            }
            s / n.max(1) as f64
        };
        assert!(avg("Europe") > avg("Africa") + 20_000.0);
    }

    #[test]
    fn most_country_values_link() {
        let d = small();
        let linker = nexus_kg::EntityLinker::new(&d.kg);
        let (_, stats) = linker.link_column(d.table.column("Country").unwrap());
        let rate = stats.link_rate();
        assert!(rate > 0.9, "link rate {rate}");
        assert!(stats.not_found > 0, "typos should fail to link");
    }

    #[test]
    fn kg_attribute_count_near_table1() {
        let d = generate(&SoConfig {
            n_rows: 100,
            ..SoConfig::default()
        });
        // Country + continent properties (union of names, some shared).
        let total = d.kg.n_properties();
        assert!(
            (440..=500).contains(&total),
            "expected ≈461 properties, got {total}"
        );
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(
            a.table.value(17, "Salary").unwrap(),
            b.table.value(17, "Salary").unwrap()
        );
    }

    #[test]
    fn gender_gap_planted() {
        let d = small();
        let g = d.table.column("Gender").unwrap();
        let s = d.table.column("Salary").unwrap();
        let (mut fm, mut fn_, mut mm, mut mn) = (0.0, 0, 0.0, 0);
        for i in 0..d.table.n_rows() {
            match g.str_at(i) {
                Some("f") => {
                    fm += s.f64_at(i).unwrap();
                    fn_ += 1;
                }
                Some("m") => {
                    mm += s.f64_at(i).unwrap();
                    mn += 1;
                }
                _ => {}
            }
        }
        assert!(mm / mn as f64 > fm / fn_ as f64 + 4_000.0);
    }
}
