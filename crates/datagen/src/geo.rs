//! Shared synthetic geography: countries, continents, and WHO regions with
//! latent factors that the planted confounders expose.
//!
//! Every country carries three latent factors:
//!
//! * `econ` — development level; drives HDI (and the bulk of salary /
//!   death-rate effects). Continents differ in mean; **Europe is tight**
//!   (low spread), reproducing the paper's observation that HDI cannot
//!   explain within-Europe differences (Example 2.4 / Table 4).
//! * `wealth` — an orthogonal wealth component; drives GDP.
//! * `inequality` — drives the Gini index.
//! * `size` — drives population / density / area.
//!
//! KG attributes are noisy functions of the latents, with redundant rank
//! copies and hundreds of distractors added on top.

use rand::rngs::StdRng;
use rand::Rng;

use nexus_kg::{EntityId, KnowledgeGraph, PropertyValue};

use crate::noise::{add_noise_properties, add_rank_copy, NoiseConfig};
use crate::rng::normal_with;

/// A synthetic country with its latent factors and derived attributes.
#[derive(Debug, Clone)]
pub struct Country {
    /// Canonical name (`"Country_042"`).
    pub name: String,
    /// An alternative surface form some table rows use.
    pub alias: Option<String>,
    /// Continent name.
    pub continent: String,
    /// WHO region name.
    pub who_region: String,
    /// Development latent in `[0, 1]`.
    pub econ: f64,
    /// Orthogonal wealth latent in `[0, 1]`.
    pub wealth: f64,
    /// Inequality latent in `[0, 1]`.
    pub inequality: f64,
    /// Size latent in `[0, 1]`.
    pub size: f64,
    /// Human Development Index (noisy function of `econ`).
    pub hdi: f64,
    /// GDP (noisy function of `wealth` and `size`).
    pub gdp: f64,
    /// Gini index (noisy function of `inequality`).
    pub gini: f64,
    /// Population (log-scaled function of `size`).
    pub population: f64,
    /// Density (population over a size-driven area).
    pub density: f64,
}

/// The continents with their mean development and its spread:
/// `(name, econ mean, econ sd, WHO region)`.
pub const CONTINENTS: &[(&str, f64, f64, &str)] = &[
    ("Europe", 0.88, 0.025, "EURO"),
    ("North America", 0.78, 0.10, "PAHO"),
    ("Oceania", 0.74, 0.08, "WPRO"),
    ("Asia", 0.55, 0.16, "SEARO"),
    ("South America", 0.52, 0.10, "PAHO"),
    ("Africa", 0.32, 0.12, "AFRO"),
];

/// Generates `n` countries across the continents.
pub fn gen_countries(n: usize, rng: &mut StdRng) -> Vec<Country> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (continent, mean, sd, who) = CONTINENTS[i % CONTINENTS.len()];
        let econ = (normal_with(rng, mean, sd)).clamp(0.02, 0.99);
        let wealth = (0.5 * econ + 0.5 * rng.gen::<f64>()).clamp(0.0, 1.0);
        // Inequality leans mildly against development but keeps a dominant
        // independent component: the Min-Redundancy criterion must not be
        // forced to trade it off against HDI.
        let inequality = (0.15 - 0.2 * econ + 0.9 * rng.gen::<f64>()).clamp(0.0, 1.0);
        let size = rng.gen::<f64>();
        let hdi = (0.35 + 0.6 * econ + normal_with(rng, 0.0, 0.01)).clamp(0.2, 0.99);
        let gdp = (200.0 + 25_000.0 * wealth * (0.3 + size)).max(50.0);
        let gini = (24.0 + 30.0 * inequality + normal_with(rng, 0.0, 1.0)).clamp(20.0, 65.0);
        let population = 10f64.powf(5.5 + 3.5 * size + normal_with(rng, 0.0, 0.1));
        let area = 10f64.powf(4.0 + 2.5 * size + normal_with(rng, 0.0, 0.4));
        let density = population / area;
        let name = format!("Country_{i:03}");
        // Every 7th country gets an official long form used by some rows;
        // every 23rd gets an alias shared with another country (ambiguity).
        let alias = if i % 7 == 0 {
            Some(format!("Republic of Country_{i:03}"))
        } else {
            None
        };
        out.push(Country {
            name,
            alias,
            continent: continent.to_string(),
            who_region: who.to_string(),
            econ,
            wealth,
            inequality,
            size,
            hdi,
            gdp,
            gini,
            population,
            density,
        });
    }
    out
}

/// Planted country-level KG attribute names (before rank copies and noise).
pub const COUNTRY_PLANTED: &[&str] = &[
    "hdi",
    "gdp",
    "gini",
    "population census",
    "density",
    "area km2",
    "established date",
    "language",
    "currency",
    "time zone",
];

/// Adds country entities (with planted attributes, rank copies, aliases,
/// ambiguity traps, and `noise` distractors) to `kg`. Returns entity ids
/// aligned with `countries`.
pub fn add_country_entities(
    kg: &mut KnowledgeGraph,
    countries: &[Country],
    noise: &NoiseConfig,
    rng: &mut StdRng,
) -> Vec<EntityId> {
    let mut ids = Vec::with_capacity(countries.len());
    let languages = [
        "english", "spanish", "french", "arabic", "mandarin", "other",
    ];
    let currencies = ["usd", "euro", "local"];
    for (i, c) in countries.iter().enumerate() {
        let id = kg.add_entity(c.name.clone(), "Country");
        if let Some(alias) = &c.alias {
            kg.add_alias(id, alias.clone());
        }
        // Ambiguity trap: every 23rd pair of neighbours shares an alias, so
        // the linker declines and those rows go missing.
        if i % 23 == 22 {
            kg.add_alias(id, format!("The Federation {}", i / 23));
            kg.add_alias(id - 1, format!("The Federation {}", i / 23));
        }
        kg.set_literal(id, "hdi", c.hdi);
        kg.set_literal(id, "gdp", c.gdp);
        kg.set_literal(id, "gini", c.gini);
        kg.set_literal(id, "population census", c.population.round());
        kg.set_literal(id, "density", c.density);
        kg.set_literal(id, "area km2", (c.population / c.density).round());
        kg.set_literal(
            id,
            "established date",
            1200 + (rng.gen::<f64>() * 800.0) as i64,
        );
        kg.set_literal(id, "language", languages[rng.gen_range(0..languages.len())]);
        // Currency correlates with continent (Euro in Europe) — the Table 4
        // "Currency == Euro" subgroup.
        let currency = if c.continent == "Europe" && rng.gen::<f64>() < 0.8 {
            "euro"
        } else {
            currencies[rng.gen_range(0..currencies.len())]
        };
        kg.set_literal(id, "currency", currency);
        kg.set_literal(id, "time zone", format!("utc{}", rng.gen_range(-11..=12)));
        // Entity-valued properties for the multi-hop experiments (§5.4):
        // a head of state whose own attributes sit one hop away, and a
        // one-to-many ethnic-group link whose member populations can be
        // aggregated at two hops.
        let leader = kg.add_entity(format!("Leader of {}", c.name), "Person");
        kg.set_literal(leader, "age", 35 + (rng.gen::<f64>() * 50.0) as i64);
        kg.set_literal(
            leader,
            "gender",
            if rng.gen::<f64>() < 0.25 {
                "female"
            } else {
                "male"
            },
        );
        kg.set_property(id, "leader", PropertyValue::Entity(leader));
        let n_groups = rng.gen_range(2..5usize);
        let groups: Vec<EntityId> = (0..n_groups)
            .map(|g| {
                let e = kg.add_entity(format!("{} group {g}", c.name), "EthnicGroup");
                kg.set_literal(e, "population", (c.population * rng.gen::<f64>()).round());
                e
            })
            .collect();
        kg.set_property(id, "ethnic group", PropertyValue::EntityList(groups));
        ids.push(id);
    }
    // Redundant copies the Min-Redundancy criterion must reject.
    add_rank_copy(kg, &ids, "hdi");
    add_rank_copy(kg, &ids, "gdp");
    add_rank_copy(kg, &ids, "gini");
    // A noisy near-copy of the census.
    for (&id, c) in ids.iter().zip(countries) {
        kg.set_literal(
            id,
            "population estimate",
            (c.population * (1.0 + normal_with(rng, 0.0, 0.02))).round(),
        );
    }
    add_noise_properties(kg, &ids, noise, rng);
    ids
}

/// Planted continent-level attributes.
pub const CONTINENT_PLANTED: &[&str] = &["gdp", "density", "area rank", "population total"];

/// Adds continent entities with aggregate attributes derived from their
/// member countries. Returns `(continent name, entity id)` pairs.
pub fn add_continent_entities(
    kg: &mut KnowledgeGraph,
    countries: &[Country],
    noise: &NoiseConfig,
    rng: &mut StdRng,
) -> Vec<(String, EntityId)> {
    let mut out = Vec::new();
    for &(name, _, _, _) in CONTINENTS {
        let members: Vec<&Country> = countries.iter().filter(|c| c.continent == name).collect();
        if members.is_empty() {
            continue;
        }
        let id = kg.add_entity(name, "Continent");
        let gdp: f64 = members.iter().map(|c| c.gdp).sum();
        let pop: f64 = members.iter().map(|c| c.population).sum();
        let density: f64 = members.iter().map(|c| c.density).sum::<f64>() / members.len() as f64;
        kg.set_literal(id, "gdp", gdp);
        kg.set_literal(id, "population total", pop.round());
        kg.set_literal(id, "density", density);
        out.push((name.to_string(), id));
    }
    let ids: Vec<EntityId> = out.iter().map(|(_, id)| *id).collect();
    add_rank_copy(kg, &ids, "gdp");
    // "area rank" as an independent ordinal.
    for (rank, &id) in ids.iter().enumerate() {
        kg.set_literal(id, "area rank", (rank + 1) as i64);
    }
    add_noise_properties(kg, &ids, noise, rng);
    out
}

/// Adds WHO-region entities (for the Covid dataset). Returns
/// `(region name, entity id)` pairs.
pub fn add_who_region_entities(
    kg: &mut KnowledgeGraph,
    countries: &[Country],
    noise: &NoiseConfig,
    rng: &mut StdRng,
) -> Vec<(String, EntityId)> {
    let mut names: Vec<&str> = countries.iter().map(|c| c.who_region.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    let mut out = Vec::new();
    for name in names {
        let members: Vec<&Country> = countries.iter().filter(|c| c.who_region == name).collect();
        let id = kg.add_entity(name, "WhoRegion");
        let density: f64 = members.iter().map(|c| c.density).sum::<f64>() / members.len() as f64;
        let pop: f64 = members.iter().map(|c| c.population).sum();
        kg.set_literal(id, "density", density);
        kg.set_literal(id, "population total", pop.round());
        kg.set_literal(id, "area km", (pop / density).round());
        out.push((name.to_string(), id));
    }
    let ids: Vec<EntityId> = out.iter().map(|(_, id)| *id).collect();
    add_noise_properties(kg, &ids, noise, rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn europe_is_tight_in_econ() {
        let mut rng = StdRng::seed_from_u64(1);
        let countries = gen_countries(188, &mut rng);
        let eu: Vec<f64> = countries
            .iter()
            .filter(|c| c.continent == "Europe")
            .map(|c| c.hdi)
            .collect();
        let af: Vec<f64> = countries
            .iter()
            .filter(|c| c.continent == "Africa")
            .map(|c| c.hdi)
            .collect();
        let sd = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(sd(&eu) < 0.03, "europe sd {}", sd(&eu));
        assert!(sd(&af) > 0.04, "africa sd {}", sd(&af));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&eu) > mean(&af) + 0.2);
    }

    #[test]
    fn country_entities_have_planted_and_noise_attrs() {
        let mut rng = StdRng::seed_from_u64(2);
        let countries = gen_countries(50, &mut rng);
        let mut kg = KnowledgeGraph::new();
        let noise = NoiseConfig {
            n_numeric: 10,
            n_categorical: 5,
            n_constant: 1,
            n_unique: 1,
            prefix: "country".into(),
            ..NoiseConfig::default()
        };
        let ids = add_country_entities(&mut kg, &countries, &noise, &mut rng);
        assert_eq!(ids.len(), 50);
        assert!(kg.property(ids[0], "hdi").is_some());
        assert!(kg.property(ids[0], "hdi rank").is_some());
        assert!(kg.property(ids[0], "population estimate").is_some());
        // planted (10) + rank copies (3) + estimate (1) + noise (17)
        // + multi-hop props (leader, age, gender, ethnic group, population)
        assert_eq!(kg.n_properties(), 10 + 3 + 1 + 17 + 5);
    }

    #[test]
    fn aliases_and_ambiguity_planted() {
        let mut rng = StdRng::seed_from_u64(3);
        let countries = gen_countries(60, &mut rng);
        let mut kg = KnowledgeGraph::new();
        let noise = NoiseConfig {
            n_numeric: 0,
            n_categorical: 0,
            n_constant: 0,
            n_unique: 0,
            prefix: "c".into(),
            ..NoiseConfig::default()
        };
        add_country_entities(&mut kg, &countries, &noise, &mut rng);
        let linker = nexus_kg::EntityLinker::new(&kg);
        // Long-form alias resolves.
        assert!(matches!(
            linker.link("Republic of Country_000"),
            nexus_kg::LinkOutcome::Linked(_)
        ));
        // Shared alias is ambiguous.
        assert_eq!(
            linker.link("The Federation 0"),
            nexus_kg::LinkOutcome::Ambiguous
        );
    }

    #[test]
    fn continent_and_region_entities() {
        let mut rng = StdRng::seed_from_u64(4);
        let countries = gen_countries(188, &mut rng);
        let mut kg = KnowledgeGraph::new();
        let noise = NoiseConfig {
            n_numeric: 3,
            n_categorical: 1,
            n_constant: 0,
            n_unique: 0,
            prefix: "cont".into(),
            ..NoiseConfig::default()
        };
        let conts = add_continent_entities(&mut kg, &countries, &noise, &mut rng);
        assert_eq!(conts.len(), 6);
        let regions = add_who_region_entities(&mut kg, &countries, &noise, &mut rng);
        assert!(regions.len() >= 4);
        let (_, eu) = conts.iter().find(|(n, _)| n == "Europe").unwrap();
        assert!(kg.property(*eu, "gdp").is_some());
        assert!(kg.property(*eu, "area rank").is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let ca = gen_countries(20, &mut a);
        let cb = gen_countries(20, &mut b);
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.hdi, y.hdi);
            assert_eq!(x.name, y.name);
        }
    }
}
