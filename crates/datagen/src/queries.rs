//! The 14 representative queries of the user study (Table 2) plus the
//! random-query generator of Section 5.1.
//!
//! Each query records its planted ground-truth confounders under the
//! candidate naming convention used by `nexus-core`:
//! `"{extraction column}::{KG property}"` for extracted attributes and the
//! bare column name for base-table attributes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nexus_query::{parse, AggregateQuery};
use nexus_table::DataType;

use crate::{Dataset, DatasetKind};

/// A benchmark query with its planted ground truth.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Stable identifier (e.g. `"SO-Q1"`).
    pub id: &'static str,
    /// The dataset the query runs on.
    pub dataset: DatasetKind,
    /// The SQL text.
    pub sql: &'static str,
    /// Candidate names that genuinely confound the exposure–outcome pair
    /// (any subset of these is a correct explanation; redundant variants are
    /// listed so either member of a redundant pair scores).
    pub ground_truth: &'static [&'static str],
}

impl BenchQuery {
    /// Parses the SQL.
    pub fn parsed(&self) -> AggregateQuery {
        parse(self.sql).expect("benchmark SQL is valid")
    }
}

/// The 14 representative queries of Table 2.
pub const BENCH_QUERIES: &[BenchQuery] = &[
    // ---- Stack Overflow -------------------------------------------------
    BenchQuery {
        id: "SO-Q1",
        dataset: DatasetKind::So,
        sql: "SELECT Country, avg(Salary) FROM SO GROUP BY Country",
        ground_truth: &[
            "Country::hdi",
            "Country::hdi rank",
            "Country::gini",
            "Country::gini rank",
            "Country::population census",
            "Country::population estimate",
            // The continent is upstream of country development (continent
            // bases drive econ), hence a genuine coarse confounder.
            "Continent",
            "Continent::gdp",
        ],
    },
    BenchQuery {
        id: "SO-Q2",
        dataset: DatasetKind::So,
        sql: "SELECT Continent, avg(Salary) FROM SO GROUP BY Continent",
        ground_truth: &[
            "Continent::gdp",
            "Continent::gdp rank",
            "Continent::population total",
            // Country-level development attributes confound the continent
            // query just as genuinely (continents differ because their
            // member countries' economies do).
            "Country::hdi",
            "Country::hdi rank",
            "Country::gdp",
            "Country::gdp rank",
            // The country refines the continent exposure upstream of the
            // planted salary causes (same argument as Origin_city for
            // FL-Q4).
            "Country",
        ],
    },
    BenchQuery {
        id: "SO-Q3",
        dataset: DatasetKind::So,
        sql: "SELECT Country, avg(Salary) FROM SO WHERE Continent = 'Europe' GROUP BY Country",
        ground_truth: &[
            "Country::population census",
            "Country::population estimate",
            "Country::gini",
            "Country::gini rank",
        ],
    },
    // ---- Flights ---------------------------------------------------------
    BenchQuery {
        id: "FL-Q1",
        dataset: DatasetKind::Flights,
        sql: "SELECT Origin_city, avg(Departure_delay) FROM Flights GROUP BY Origin_city",
        ground_truth: &[
            "Origin_city::precipitation days",
            "Origin_city::year low f",
            "Origin_city::december low f",
            "Origin_city::year avg f",
            "Origin_city::population urban",
            "Origin_city::population urban rank",
            "Origin_city::population metropolitan",
            "Origin_city::population estimation",
            "Origin_city::population total",
            "Security_delay",
            "Airline",
        ],
    },
    BenchQuery {
        id: "FL-Q2",
        dataset: DatasetKind::Flights,
        sql: "SELECT Origin_state, avg(Departure_delay) FROM Flights GROUP BY Origin_state",
        ground_truth: &[
            "Origin_state::year snow",
            "Origin_state::year low f",
            "Origin_state::record low f",
            "Origin_state::population estimation",
            "Origin_state::population estimation rank",
            "Origin_state::density",
            // City-level weather/traffic: a state's delays are its cities'.
            "Origin_city::precipitation days",
            "Origin_city::year low f",
            "Origin_city::december low f",
            "Origin_city::year avg f",
            "Origin_city::population urban",
            "Security_delay",
            "Airline",
        ],
    },
    BenchQuery {
        id: "FL-Q3",
        dataset: DatasetKind::Flights,
        sql: "SELECT Origin_city, avg(Departure_delay) FROM Flights WHERE Origin_state = 'CA' GROUP BY Origin_city",
        ground_truth: &[
            "Origin_city::population urban",
            "Origin_city::population urban rank",
            "Origin_city::population metropolitan",
            "Origin_city::population total",
            "Origin_city::density",
            "Security_delay",
            "Origin_city::precipitation days",
            "Origin_city::year low f",
        ],
    },
    BenchQuery {
        id: "FL-Q4",
        dataset: DatasetKind::Flights,
        sql: "SELECT Origin_state, Airline, avg(Departure_delay) FROM Flights GROUP BY Origin_state, Airline",
        ground_truth: &[
            "Origin_state::population estimation",
            "Origin_state::population estimation rank",
            "Origin_state::year snow",
            "Origin_state::year low f",
            "Airline::fleet size",
            "Airline::equity",
            "Airline::net income",
            // The origin city is upstream of both planted delay causes
            // (weather and traffic) for the composite exposure.
            "Origin_city",
            "Origin_city::precipitation days",
            "Origin_city::population urban",
            "Security_delay",
        ],
    },
    BenchQuery {
        id: "FL-Q5",
        dataset: DatasetKind::Flights,
        sql: "SELECT Airline, avg(Departure_delay) FROM Flights GROUP BY Airline",
        ground_truth: &[
            "Airline::equity",
            "Airline::fleet size",
            "Airline::net income",
        ],
    },
    // ---- Covid-19 ----------------------------------------------------------
    BenchQuery {
        id: "COVID-Q1",
        dataset: DatasetKind::Covid,
        sql: "SELECT Country, avg(Deaths_per_100_cases) FROM Covid GROUP BY Country",
        ground_truth: &[
            "Country::hdi",
            "Country::hdi rank",
            "Country::gdp",
            "Country::gdp rank",
            "Country::density",
            "Confirmed_cases",
        ],
    },
    BenchQuery {
        id: "COVID-Q2",
        dataset: DatasetKind::Covid,
        sql: "SELECT Country, avg(Deaths_per_100_cases) FROM Covid WHERE WHO_Region = 'EURO' GROUP BY Country",
        ground_truth: &[
            "Country::gini",
            "Country::gini rank",
            "Country::gdp",
            "Country::population census",
            "Country::population estimate",
            "Confirmed_cases",
        ],
    },
    BenchQuery {
        id: "COVID-Q3",
        dataset: DatasetKind::Covid,
        sql: "SELECT WHO_Region, avg(Deaths_per_100_cases) FROM Covid GROUP BY WHO_Region",
        ground_truth: &[
            "WHO_Region::density",
            "WHO_Region::area km",
            "Country::hdi",
            "Country::hdi rank",
            "Country::gdp",
            "Country::density",
            "Confirmed_cases",
        ],
    },
    // ---- Forbes ------------------------------------------------------------
    BenchQuery {
        id: "FORBES-Q1",
        dataset: DatasetKind::Forbes,
        sql: "SELECT Name, avg(Pay) FROM Forbes WHERE Category = 'Actors' GROUP BY Name",
        ground_truth: &["Name::net worth", "Name::gender"],
    },
    BenchQuery {
        id: "FORBES-Q2",
        dataset: DatasetKind::Forbes,
        sql: "SELECT Name, avg(Pay) FROM Forbes WHERE Category = 'Directors/Producers' GROUP BY Name",
        ground_truth: &["Name::net worth", "Name::awards", "Name::years active"],
    },
    BenchQuery {
        id: "FORBES-Q3",
        dataset: DatasetKind::Forbes,
        sql: "SELECT Name, avg(Pay) FROM Forbes WHERE Category = 'Athletes' GROUP BY Name",
        ground_truth: &[
            "Name::cups",
            "Name::national cups",
            "Name::total cups",
            "Name::draft pick",
            "Name::net worth",
        ],
    },
];

/// The queries for a particular dataset.
pub fn queries_for(dataset: DatasetKind) -> Vec<&'static BenchQuery> {
    BENCH_QUERIES
        .iter()
        .filter(|q| q.dataset == dataset)
        .collect()
}

/// Generates `n` random aggregate queries over a dataset (Section 5.1):
/// the exposure is one of the extraction columns, the outcome one of the
/// dataset's numeric outcome columns, and an optional WHERE clause picks a
/// categorical value covering ≥ 10% of the rows.
pub fn random_queries(dataset: &Dataset, n: usize, seed: u64) -> Vec<AggregateQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let table = &dataset.table;

    // Candidate WHERE columns: categorical, moderate cardinality.
    let where_cols: Vec<&str> = table
        .schema()
        .fields()
        .iter()
        .filter(|f| f.dtype == DataType::Utf8)
        .map(|f| f.name.as_str())
        .filter(|name| {
            let c = table.column(name).expect("schema name");
            let d = c.distinct_count();
            (2..=30).contains(&d)
        })
        .collect();

    for _ in 0..n {
        let t = &dataset.extraction_columns[rng.gen_range(0..dataset.extraction_columns.len())];
        let o = &dataset.outcome_columns[rng.gen_range(0..dataset.outcome_columns.len())];
        // Try to find a selective-enough WHERE value.
        let mut where_part = String::new();
        if !where_cols.is_empty() && rng.gen::<f64>() < 0.7 {
            for _ in 0..8 {
                let wc = where_cols[rng.gen_range(0..where_cols.len())];
                if wc == t {
                    continue;
                }
                let col = table.column(wc).expect("where col");
                let i = rng.gen_range(0..table.n_rows());
                let Some(v) = col.str_at(i) else { continue };
                let count = (0..table.n_rows())
                    .filter(|&r| col.str_at(r) == Some(v))
                    .count();
                if count * 10 >= table.n_rows() {
                    where_part = format!(" WHERE {wc} = '{v}'");
                    break;
                }
            }
        }
        let sql = format!("SELECT {t}, avg({o}) FROM D{where_part} GROUP BY {t}");
        out.push(parse(&sql).expect("generated SQL is valid"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{load, Scale};

    #[test]
    fn fourteen_queries_parse() {
        assert_eq!(BENCH_QUERIES.len(), 14);
        for q in BENCH_QUERIES {
            let parsed = q.parsed();
            assert!(parsed.exposure().is_some(), "{}", q.id);
            assert!(parsed.outcome().is_some(), "{}", q.id);
            assert!(!q.ground_truth.is_empty(), "{}", q.id);
        }
    }

    #[test]
    fn queries_partition_by_dataset() {
        assert_eq!(queries_for(DatasetKind::So).len(), 3);
        assert_eq!(queries_for(DatasetKind::Flights).len(), 5);
        assert_eq!(queries_for(DatasetKind::Covid).len(), 3);
        assert_eq!(queries_for(DatasetKind::Forbes).len(), 3);
    }

    #[test]
    fn exposure_is_an_extraction_column() {
        for q in BENCH_QUERIES {
            let parsed = q.parsed();
            let ds_cols: Vec<String> = match q.dataset {
                DatasetKind::So => vec!["Country".into(), "Continent".into()],
                DatasetKind::Covid => vec!["Country".into(), "WHO_Region".into()],
                DatasetKind::Flights => vec![
                    "Airline".into(),
                    "Origin_city".into(),
                    "Origin_state".into(),
                    "Dest_city".into(),
                    "Dest_state".into(),
                ],
                DatasetKind::Forbes => vec!["Name".into()],
            };
            assert!(
                ds_cols.iter().any(|c| c == parsed.exposure().unwrap()),
                "{}: exposure {:?}",
                q.id,
                parsed.exposure()
            );
        }
    }

    #[test]
    fn random_queries_valid_and_selective() {
        let d = load(DatasetKind::So, Scale::Small);
        let qs = random_queries(&d, 10, 42);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert!(q.exposure().is_some());
            let (_, o) = q.outcome().unwrap();
            assert!(d.outcome_columns.iter().any(|c| c == o));
            if let Some(p) = q.context() {
                let mask = nexus_query::eval_predicate(p, &d.table).unwrap();
                assert!(
                    mask.count_ones() * 10 >= d.table.n_rows(),
                    "selectivity too low: {}",
                    mask.count_ones()
                );
            }
        }
    }
}
