//! # nexus-datagen
//!
//! Synthetic datasets and knowledge graphs with **planted confounding
//! structure**, substituting for the paper's proprietary data (Stack
//! Overflow survey, Covid-19, US flight delays, Forbes earnings) and for
//! DBpedia (see DESIGN.md §4 for the substitution argument).
//!
//! Each generator reproduces the corresponding dataset's shape from
//! Table 1 — row counts, extraction columns, and the number of extractable
//! attributes — and plants a known causal structure so that recovered
//! explanations can be scored against ground truth.

#![warn(missing_docs)]

pub mod covid;
pub mod flights;
pub mod forbes;
pub mod geo;
pub mod noise;
pub mod queries;
pub mod rng;
pub mod so;
pub mod synth;

use nexus_kg::KnowledgeGraph;
use nexus_table::Table;

pub use queries::{queries_for, random_queries, BenchQuery, BENCH_QUERIES};

/// A generated dataset: the base table, its knowledge graph, and the
/// columns the paper uses for attribute extraction.
#[derive(Debug)]
pub struct Dataset {
    /// Dataset name (matches Table 1).
    pub name: &'static str,
    /// The base relational table.
    pub table: Table,
    /// The synthetic DBpedia-like knowledge graph.
    pub kg: KnowledgeGraph,
    /// Columns whose values are linked to KG entities (Table 1, last column).
    pub extraction_columns: Vec<String>,
    /// Numeric columns that make sense as query outcomes.
    pub outcome_columns: Vec<String>,
}

/// Which of the four paper datasets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Stack Overflow developer survey (47,623 rows).
    So,
    /// Covid-19 per-country statistics (188 rows).
    Covid,
    /// US flight delays (up to 5,819,079 rows).
    Flights,
    /// Forbes celebrity earnings (1,647 rows).
    Forbes,
}

impl DatasetKind {
    /// All four datasets.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::So,
        DatasetKind::Covid,
        DatasetKind::Flights,
        DatasetKind::Forbes,
    ];

    /// The table name used in benchmark SQL.
    pub fn table_name(&self) -> &'static str {
        match self {
            DatasetKind::So => "SO",
            DatasetKind::Covid => "Covid",
            DatasetKind::Flights => "Flights",
            DatasetKind::Forbes => "Forbes",
        }
    }
}

/// Generation scale: trade fidelity to Table 1 against runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances for unit/integration tests (seconds).
    Small,
    /// The evaluation default: every dataset at its Table 1 size except
    /// Flights, which is capped at 300k rows.
    Default,
    /// Full Table 1 sizes, including the 5.8M-row Flights table.
    Paper,
}

/// Generates a dataset at the given scale.
pub fn load(kind: DatasetKind, scale: Scale) -> Dataset {
    match kind {
        DatasetKind::So => {
            let mut cfg = so::SoConfig::default();
            if scale == Scale::Small {
                cfg.n_rows = 6_000;
            }
            so::generate(&cfg)
        }
        DatasetKind::Covid => {
            // The Covid table is tiny already; Small keeps the full roster.
            covid::generate(&covid::CovidConfig::default())
        }
        DatasetKind::Flights => {
            let mut cfg = flights::FlightsConfig::default();
            match scale {
                Scale::Small => {
                    cfg.n_rows = 20_000;
                    cfg.n_cities = 120;
                }
                Scale::Default => {}
                Scale::Paper => cfg.n_rows = 5_819_079,
            }
            flights::generate(&cfg)
        }
        DatasetKind::Forbes => forbes::generate(&forbes::ForbesConfig::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_small_instances() {
        for kind in DatasetKind::ALL {
            let d = load(kind, Scale::Small);
            assert!(d.table.n_rows() > 0, "{kind:?}");
            assert!(d.kg.n_entities() > 0, "{kind:?}");
            assert!(!d.extraction_columns.is_empty(), "{kind:?}");
            for c in &d.extraction_columns {
                assert!(d.table.has_column(c), "{kind:?} missing {c}");
            }
            for c in &d.outcome_columns {
                assert!(d.table.has_column(c), "{kind:?} missing {c}");
            }
        }
    }

    #[test]
    fn default_scale_matches_table1_row_counts() {
        let so = load(DatasetKind::So, Scale::Default);
        assert_eq!(so.table.n_rows(), 47_623);
        let covid = load(DatasetKind::Covid, Scale::Default);
        assert_eq!(covid.table.n_rows(), 188);
        let forbes = load(DatasetKind::Forbes, Scale::Default);
        assert_eq!(forbes.table.n_rows(), 1_647);
    }
}
