//! The synthetic US-flights delay dataset.
//!
//! Matches the paper's Flights dataset (Table 1): up to 5,819,079 rows
//! (configurable; experiments default lower so the suite stays fast),
//! extraction columns `Airline` and origin/destination city/state, ~704
//! extractable attributes. Planted structure (following the paper's
//! ground-truth citations):
//!
//! * city **weather** (precipitation days / low temperatures) delays
//!   flights;
//! * city **traffic** (urban population, density) delays flights and also
//!   drives the base-table `Security_delay` component;
//! * airline **operations** (equity, fleet size) delay flights, and airline
//!   choice correlates with region — a cross-column confounder;
//! * state-level aggregates carry the state-query signal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nexus_kg::{EntityId, KnowledgeGraph};
use nexus_table::{Column, Table};

use crate::noise::{add_noise_properties, add_rank_copy, NoiseConfig};
use crate::rng::{normal_with, weighted_index};
use crate::Dataset;

/// Configuration for the flights generator.
#[derive(Debug, Clone)]
pub struct FlightsConfig {
    /// Number of flight rows (the paper's full dataset has 5,819,079).
    pub n_rows: usize,
    /// Number of cities.
    pub n_cities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlightsConfig {
    fn default() -> Self {
        FlightsConfig {
            n_rows: 300_000,
            n_cities: 320,
            seed: 0xF11_485,
        }
    }
}

/// Two-letter state codes (the real 50, so `WHERE Origin_state = 'CA'`
/// reads like the paper's query).
pub const STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY",
    "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY",
];

/// The 14 airlines (paper: "large air carriers").
pub const AIRLINES: &[&str] = &[
    "AuroraAir",
    "BlueJet",
    "CascadeAir",
    "DeltaWing",
    "EagleExpress",
    "FrontRange",
    "GoldenState",
    "Horizon",
    "IslandAir",
    "JetStream",
    "KittyHawk",
    "Liberty",
    "Meridian",
    "NorthStar",
];

struct City {
    name: String,
    state: usize,
    region: usize,
    weather: f64,
    traffic: f64,
}

struct Airline {
    name: String,
    region: usize,
    ops: f64,
    size: f64,
}

/// Per-row delay model (minutes), exposed for tests.
fn expected_delay(city: &City, airline: &Airline, security: f64) -> f64 {
    8.0 + 14.0 * city.weather + 9.0 * city.traffic + 10.0 * (1.0 - airline.ops) + security
}

/// Generates the flights dataset.
pub fn generate(config: &FlightsConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Cities spread over states and 4 regions.
    let cities: Vec<City> = (0..config.n_cities)
        .map(|i| {
            let state = i % STATES.len();
            City {
                name: format!("City_{i:03}"),
                state,
                region: state % 4,
                weather: rng.gen::<f64>(),
                traffic: rng.gen::<f64>(),
            }
        })
        .collect();

    let airlines: Vec<Airline> = AIRLINES
        .iter()
        .enumerate()
        .map(|(i, name)| Airline {
            name: name.to_string(),
            region: i % 4,
            ops: rng.gen::<f64>(),
            size: rng.gen::<f64>(),
        })
        .collect();

    // Traffic-weighted origin sampling.
    let city_weights: Vec<f64> = cities.iter().map(|c| 0.2 + c.traffic).collect();

    let n = config.n_rows;
    let mut col_airline: Vec<&str> = Vec::with_capacity(n);
    let mut col_o_city = Vec::with_capacity(n);
    let mut col_o_state = Vec::with_capacity(n);
    let mut col_d_city = Vec::with_capacity(n);
    let mut col_d_state = Vec::with_capacity(n);
    let mut col_month = Vec::with_capacity(n);
    let mut col_dow = Vec::with_capacity(n);
    let mut col_distance = Vec::with_capacity(n);
    let mut col_dep = Vec::with_capacity(n);
    let mut col_arr = Vec::with_capacity(n);
    let mut col_sec = Vec::with_capacity(n);
    let mut col_cancelled = Vec::with_capacity(n);

    for _ in 0..n {
        let oc = weighted_index(&mut rng, &city_weights);
        let mut dc = weighted_index(&mut rng, &city_weights);
        if dc == oc {
            dc = (dc + 1) % cities.len();
        }
        let origin = &cities[oc];
        let dest = &cities[dc];
        // Airlines favor their home region (cross-column confounding).
        let airline_weights: Vec<f64> = airlines
            .iter()
            .map(|a| if a.region == origin.region { 3.0 } else { 1.0 })
            .collect();
        let ai = weighted_index(&mut rng, &airline_weights);
        let airline = &airlines[ai];

        let security = (normal_with(&mut rng, 3.0 * origin.traffic, 1.2)).max(0.0);
        let dep = expected_delay(origin, airline, security) + normal_with(&mut rng, 0.0, 9.0);
        let arr = dep + normal_with(&mut rng, 0.0, 4.0);
        let cancelled = rng.gen::<f64>() < 0.012 + 0.02 * origin.weather;

        col_airline.push(AIRLINES[ai]);
        col_o_city.push(origin.name.clone());
        col_o_state.push(STATES[origin.state]);
        col_d_city.push(dest.name.clone());
        col_d_state.push(STATES[dest.state]);
        col_month.push(rng.gen_range(1..=12i64));
        col_dow.push(rng.gen_range(1..=7i64));
        col_distance.push((300.0 + 2_500.0 * rng.gen::<f64>()).round());
        col_dep.push(dep);
        col_arr.push(arr);
        col_sec.push(security);
        col_cancelled.push(cancelled);
    }

    let table = Table::new(vec![
        ("Airline", Column::from_strs(&col_airline)),
        ("Origin_city", Column::from_strs(&col_o_city)),
        ("Origin_state", Column::from_strs(&col_o_state)),
        ("Dest_city", Column::from_strs(&col_d_city)),
        ("Dest_state", Column::from_strs(&col_d_state)),
        ("Month", Column::from_i64(col_month)),
        ("Day_of_week", Column::from_i64(col_dow)),
        ("Distance", Column::from_f64(col_distance)),
        ("Departure_delay", Column::from_f64(col_dep)),
        ("Arrival_delay", Column::from_f64(col_arr)),
        ("Security_delay", Column::from_f64(col_sec)),
        ("Cancelled", Column::from_bools(col_cancelled)),
    ])
    .expect("columns share one length");

    let mut kg = KnowledgeGraph::new();
    add_city_entities(&mut kg, &cities, &mut rng);
    add_state_entities(&mut kg, &cities, &mut rng);
    add_airline_entities(&mut kg, &airlines, &mut rng);

    Dataset {
        name: "Flights",
        table,
        kg,
        extraction_columns: vec![
            "Airline".into(),
            "Origin_city".into(),
            "Origin_state".into(),
            "Dest_city".into(),
            "Dest_state".into(),
        ],
        outcome_columns: vec!["Departure_delay".into(), "Arrival_delay".into()],
    }
}

fn add_city_entities(kg: &mut KnowledgeGraph, cities: &[City], rng: &mut StdRng) {
    let ids: Vec<EntityId> = cities
        .iter()
        .map(|c| kg.add_entity(c.name.clone(), "City"))
        .collect();
    for (&id, c) in ids.iter().zip(cities) {
        // Weather block.
        kg.set_literal(
            id,
            "precipitation days",
            (40.0 + 140.0 * c.weather + normal_with(rng, 0.0, 4.0)).round(),
        );
        kg.set_literal(
            id,
            "year low f",
            58.0 - 45.0 * c.weather + normal_with(rng, 0.0, 1.5),
        );
        kg.set_literal(
            id,
            "december low f",
            45.0 - 42.0 * c.weather + normal_with(rng, 0.0, 2.5),
        );
        kg.set_literal(
            id,
            "year avg f",
            72.0 - 30.0 * c.weather + normal_with(rng, 0.0, 2.0),
        );
        kg.set_literal(
            id,
            "december percent sun",
            (65.0 - 40.0 * c.weather + normal_with(rng, 0.0, 3.0)).clamp(5.0, 95.0),
        );
        kg.set_literal(
            id,
            "uv index",
            (8.0 - 4.0 * c.weather + normal_with(rng, 0.0, 0.5)).clamp(1.0, 11.0),
        );
        // Traffic block.
        let pop = 10f64.powf(4.8 + 2.4 * c.traffic + normal_with(rng, 0.0, 0.05));
        kg.set_literal(id, "population urban", pop.round());
        kg.set_literal(
            id,
            "population metropolitan",
            (pop * normal_with(rng, 1.6, 0.1).max(1.0)).round(),
        );
        kg.set_literal(
            id,
            "population estimation",
            (pop * normal_with(rng, 1.02, 0.02)).round(),
        );
        kg.set_literal(
            id,
            "population total",
            (pop * normal_with(rng, 1.01, 0.01)).round(),
        );
        kg.set_literal(
            id,
            "density",
            (pop / 10f64.powf(1.5 + rng.gen::<f64>())).round(),
        );
        kg.set_literal(
            id,
            "median household income",
            (35_000.0 + 45_000.0 * rng.gen::<f64>()).round(),
        );
    }
    add_rank_copy(kg, &ids, "population urban");
    let noise = NoiseConfig {
        n_numeric: 160,
        n_categorical: 40,
        n_constant: 3,
        n_unique: 2,
        prefix: "city".into(),
        ..NoiseConfig::default()
    };
    add_noise_properties(kg, &ids, &noise, rng);
}

fn add_state_entities(kg: &mut KnowledgeGraph, cities: &[City], rng: &mut StdRng) {
    let mut ids = Vec::new();
    for (si, &code) in STATES.iter().enumerate() {
        let members: Vec<&City> = cities.iter().filter(|c| c.state == si).collect();
        if members.is_empty() {
            continue;
        }
        let id = kg.add_entity(code, "State");
        let weather = members.iter().map(|c| c.weather).sum::<f64>() / members.len() as f64;
        let traffic = members.iter().map(|c| c.traffic).sum::<f64>() / members.len() as f64;
        let pop = 10f64.powf(6.0 + 1.5 * traffic + normal_with(rng, 0.0, 0.05));
        kg.set_literal(id, "population estimation", pop.round());
        kg.set_literal(
            id,
            "density",
            (pop / 10f64.powf(3.0 + rng.gen::<f64>())).round(),
        );
        kg.set_literal(
            id,
            "year snow",
            (5.0 + 60.0 * weather + normal_with(rng, 0.0, 2.0)).max(0.0),
        );
        kg.set_literal(
            id,
            "year low f",
            55.0 - 40.0 * weather + normal_with(rng, 0.0, 1.5),
        );
        kg.set_literal(
            id,
            "record low f",
            20.0 - 50.0 * weather + normal_with(rng, 0.0, 4.0),
        );
        kg.set_literal(
            id,
            "median household income",
            (38_000.0 + 40_000.0 * rng.gen::<f64>()).round(),
        );
        ids.push(id);
    }
    add_rank_copy(kg, &ids, "population estimation");
    let noise = NoiseConfig {
        n_numeric: 90,
        n_categorical: 25,
        n_constant: 2,
        n_unique: 1,
        prefix: "state".into(),
        ..NoiseConfig::default()
    };
    add_noise_properties(kg, &ids, &noise, rng);
}

fn add_airline_entities(kg: &mut KnowledgeGraph, airlines: &[Airline], rng: &mut StdRng) {
    let ids: Vec<EntityId> = airlines
        .iter()
        .map(|a| kg.add_entity(a.name.clone(), "Airline"))
        .collect();
    for (&id, a) in ids.iter().zip(airlines) {
        kg.set_literal(
            id,
            "fleet size",
            (80.0 + 700.0 * (0.55 * a.ops + 0.45 * a.size)).round(),
        );
        kg.set_literal(
            id,
            "equity",
            (1.0 + 10.0 * a.ops + normal_with(rng, 0.0, 0.4)).max(0.1),
        );
        kg.set_literal(
            id,
            "net income",
            -0.4 + 3.0 * a.ops + normal_with(rng, 0.0, 0.2),
        );
        kg.set_literal(
            id,
            "revenue",
            (2.0 + 35.0 * a.size + normal_with(rng, 0.0, 1.0)).max(0.5),
        );
        kg.set_literal(
            id,
            "num of employees",
            (4_000.0 + 80_000.0 * a.size).round(),
        );
        kg.set_literal(id, "founded", 1930 + (rng.gen::<f64>() * 70.0) as i64);
    }
    // DBpedia describes airlines with only a handful of properties; a
    // 14-entity roster also cannot statistically support a large haystack.
    let noise = NoiseConfig {
        n_numeric: 6,
        n_categorical: 2,
        n_constant: 1,
        n_unique: 1,
        prefix: "airline".into(),
        missing_range: (0.0, 0.2),
        ..NoiseConfig::default()
    };
    add_noise_properties(kg, &ids, &noise, rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate(&FlightsConfig {
            n_rows: 20_000,
            n_cities: 120,
            seed: 11,
        })
    }

    #[test]
    fn schema_and_extraction_columns() {
        let d = small();
        assert_eq!(d.table.n_rows(), 20_000);
        assert!(d.table.has_column("Departure_delay"));
        assert_eq!(d.extraction_columns.len(), 5);
    }

    #[test]
    fn weather_drives_delay() {
        let d = small();
        // Average delay of flights from the rainiest decile of cities must
        // exceed the driest decile's.
        let linker = nexus_kg::EntityLinker::new(&d.kg);
        let (links, _) = linker.link_column(d.table.column("Origin_city").unwrap());
        let delay = d.table.column("Departure_delay").unwrap();
        let mut wet = (0.0, 0usize);
        let mut dry = (0.0, 0usize);
        for (i, l) in links.iter().enumerate() {
            let Some(id) = l else { continue };
            let Some(nexus_kg::PropertyValue::Literal(v)) =
                d.kg.property(*id, "precipitation days")
            else {
                continue;
            };
            let p = v.as_f64().unwrap();
            let dl = delay.f64_at(i).unwrap();
            if p > 150.0 {
                wet.0 += dl;
                wet.1 += 1;
            } else if p < 70.0 {
                dry.0 += dl;
                dry.1 += 1;
            }
        }
        let wet_avg = wet.0 / wet.1 as f64;
        let dry_avg = dry.0 / dry.1 as f64;
        assert!(wet_avg > dry_avg + 5.0, "wet={wet_avg} dry={dry_avg}");
    }

    #[test]
    fn airlines_favor_home_region() {
        let d = small();
        // Airline distribution must differ across cities (cross-column
        // confounding); chi-square-style check via entropy difference.
        let airline = d.table.column("Airline").unwrap().category_codes().unwrap();
        let city = d
            .table
            .column("Origin_city")
            .unwrap()
            .category_codes()
            .unwrap();
        let mi = nexus_info::mutual_information(&airline, &city);
        assert!(mi > 0.05, "MI(airline, city) = {mi}");
    }

    #[test]
    fn kg_attribute_count_near_table1() {
        // Table 1 counts attributes per extraction column; cities are
        // extracted twice (origin + dest), states twice, airlines once.
        let d = small();
        let props_of_class = |class: &str| {
            let mut set = std::collections::HashSet::new();
            for id in d.kg.entities_of_class(class) {
                set.extend(d.kg.properties_of(id).keys().copied());
            }
            set.len()
        };
        let total =
            2 * props_of_class("City") + 2 * props_of_class("State") + props_of_class("Airline");
        assert!((620..=790).contains(&total), "expected ≈704, got {total}");
    }

    #[test]
    fn ca_rows_exist() {
        let d = small();
        let state = d.table.column("Origin_state").unwrap();
        let ca = (0..d.table.n_rows())
            .filter(|&i| state.str_at(i) == Some("CA"))
            .count();
        assert!(ca > 100, "CA rows: {ca}");
    }
}
