//! The synthetic Forbes celebrity-earnings dataset.
//!
//! Matches the paper's Forbes dataset (Table 1): 1,647 rows (celebrity ×
//! year earnings, 2005–2015), extraction column `Name`, ~708 extractable
//! attributes. The defining property (Section 5.2): the KG describes each
//! celebrity category with *different* attributes (actors get awards,
//! athletes get cups and draft picks, …), so extracted attributes are ~73%
//! missing — the stress test for the selection-bias machinery.
//!
//! Planted structure: pay follows net worth everywhere; actors additionally
//! have a gender gap; directors'/producers' pay follows their awards;
//! athletes' pay follows their cups and draft pick.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nexus_kg::{EntityId, KnowledgeGraph};
use nexus_table::{Column, Table};

use crate::noise::{add_noise_properties, NoiseConfig};
use crate::rng::normal_with;
use crate::Dataset;

/// Configuration for the Forbes generator.
#[derive(Debug, Clone)]
pub struct ForbesConfig {
    /// Number of celebrities.
    pub n_celebrities: usize,
    /// Year range (inclusive).
    pub years: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForbesConfig {
    fn default() -> Self {
        ForbesConfig {
            n_celebrities: 150,
            years: (2005, 2015),
            seed: 0xF0_4B35,
        }
    }
}

/// The celebrity categories with their share of the roster and base pay.
pub const CATEGORIES: &[(&str, f64, f64)] = &[
    // (name, share, base pay $M)
    ("Actors", 0.27, 12.0),
    ("Athletes", 0.30, 15.0),
    ("Musicians", 0.17, 18.0),
    ("Directors/Producers", 0.13, 14.0),
    ("Authors", 0.07, 8.0),
    ("TV personalities", 0.06, 10.0),
];

struct Celebrity {
    name: String,
    category: usize,
    fame: f64,
    perf: f64,
    perf2: f64,
    female: bool,
}

fn expected_pay(c: &Celebrity) -> f64 {
    let (cat, _, base) = CATEGORIES[c.category];
    let mut pay = base + 30.0 * c.fame;
    match cat {
        "Actors" if c.female => {
            pay -= 9.0;
        }
        "Athletes" => pay += 16.0 * c.perf + 7.0 * c.perf2,
        "Directors/Producers" => pay += 14.0 * c.perf,
        "Musicians" => pay += 8.0 * c.perf,
        _ => {}
    }
    pay
}

/// Generates the Forbes dataset.
pub fn generate(config: &ForbesConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Roster.
    let mut celebrities = Vec::with_capacity(config.n_celebrities);
    for i in 0..config.n_celebrities {
        // Pick category by share.
        let r = rng.gen::<f64>();
        let mut acc = 0.0;
        let mut category = 0;
        for (ci, &(_, share, _)) in CATEGORIES.iter().enumerate() {
            acc += share;
            if r <= acc {
                category = ci;
                break;
            }
        }
        celebrities.push(Celebrity {
            name: format!("Celebrity_{i:03}"),
            category,
            fame: rng.gen::<f64>(),
            perf: rng.gen::<f64>(),
            perf2: rng.gen::<f64>(),
            female: rng.gen::<f64>() < 0.35,
        });
    }

    // Earnings rows: each celebrity appears in a random subset of years.
    let mut col_name = Vec::new();
    let mut col_category = Vec::new();
    let mut col_year = Vec::new();
    let mut col_pay = Vec::new();
    for c in &celebrities {
        for year in config.years.0..=config.years.1 {
            let pay = (expected_pay(c) + normal_with(&mut rng, 0.0, 4.0)).max(1.0);
            col_name.push(c.name.clone());
            col_category.push(CATEGORIES[c.category].0);
            col_year.push(year);
            col_pay.push(pay);
        }
    }
    // Trim/extend to exactly 1,647 rows like the paper's dataset when using
    // the default roster (best effort otherwise).
    let target = 1_647.min(col_name.len());
    col_name.truncate(target);
    col_category.truncate(target);
    col_year.truncate(target);
    col_pay.truncate(target);

    let table = Table::new(vec![
        ("Name", Column::from_strs(&col_name)),
        ("Category", Column::from_strs(&col_category)),
        ("Year", Column::from_i64(col_year)),
        ("Pay", Column::from_f64(col_pay)),
    ])
    .expect("columns share one length");

    // Knowledge graph: category-specific attributes -> heavy missingness.
    let mut kg = KnowledgeGraph::new();
    let ids: Vec<EntityId> = celebrities
        .iter()
        .map(|c| kg.add_entity(c.name.clone(), "Person"))
        .collect();
    for (&id, c) in ids.iter().zip(&celebrities) {
        let (cat, _, _) = CATEGORIES[c.category];
        kg.set_literal(
            id,
            "net worth",
            (20.0 + 500.0 * c.fame + normal_with(&mut rng, 0.0, 15.0)).max(1.0),
        );
        kg.set_literal(id, "gender", if c.female { "female" } else { "male" });
        kg.set_literal(id, "age", 22 + (rng.gen::<f64>() * 50.0) as i64);
        kg.set_literal(id, "active since", 2005 - (rng.gen::<f64>() * 30.0) as i64);
        if rng.gen::<f64>() < 0.6 {
            kg.set_literal(
                id,
                "citizenship",
                ["US", "UK", "other"][rng.gen_range(0..3)],
            );
        }
        match cat {
            "Actors" | "Directors/Producers" => {
                kg.set_literal(id, "awards", (12.0 * c.perf).round() as i64);
                kg.set_literal(id, "honors", (5.0 * rng.gen::<f64>()).round() as i64);
                kg.set_literal(id, "years active", (40.0 * c.perf2).round() as i64);
            }
            "Athletes" => {
                let cups = (10.0 * c.perf).round() as i64;
                kg.set_literal(id, "cups", cups);
                kg.set_literal(id, "national cups", cups + rng.gen_range(0..2i64));
                kg.set_literal(
                    id,
                    "draft pick",
                    (1.0 + 59.0 * (1.0 - c.perf2)).round() as i64,
                );
                kg.set_literal(id, "total cups", cups + rng.gen_range(0..3i64));
            }
            "Musicians" => {
                kg.set_literal(id, "albums", (2.0 + 20.0 * c.perf).round() as i64);
                kg.set_literal(
                    id,
                    "grammys",
                    (8.0 * c.perf * rng.gen::<f64>()).round() as i64,
                );
            }
            "Authors" => {
                kg.set_literal(id, "books", (3.0 + 25.0 * c.perf).round() as i64);
            }
            _ => {}
        }
    }
    // A big sparse haystack: per-category noise plus global noise, with very
    // high missingness (the paper reports 73%).
    let noise = NoiseConfig {
        n_numeric: 460,
        n_categorical: 220,
        n_constant: 4,
        n_unique: 2,
        missing_range: (0.55, 0.92),
        mnar_fraction: 0.25,
        prefix: "person".into(),
    };
    add_noise_properties(&mut kg, &ids, &noise, &mut rng);

    Dataset {
        name: "Forbes",
        table,
        kg,
        extraction_columns: vec!["Name".into()],
        outcome_columns: vec!["Pay".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_count_matches_paper() {
        let d = generate(&ForbesConfig::default());
        assert_eq!(d.table.n_rows(), 1_647);
    }

    #[test]
    fn categories_present() {
        let d = generate(&ForbesConfig::default());
        let cat = d.table.column("Category").unwrap();
        for (name, _, _) in CATEGORIES {
            let n = (0..d.table.n_rows())
                .filter(|&i| cat.str_at(i) == Some(name))
                .count();
            assert!(n > 10, "{name}: {n} rows");
        }
    }

    #[test]
    fn kg_attribute_count_near_table1() {
        let d = generate(&ForbesConfig::default());
        let total = d.kg.n_properties();
        assert!((650..=760).contains(&total), "expected ≈708, got {total}");
    }

    #[test]
    fn heavy_missingness_planted() {
        let d = generate(&ForbesConfig::default());
        // Average fill rate across properties is low.
        let n_entities = d.kg.entities_of_class("Person").len();
        let fill = d.kg.n_triples() as f64 / (n_entities * d.kg.n_properties()) as f64;
        assert!(fill < 0.45, "fill rate {fill}");
    }

    #[test]
    fn net_worth_drives_pay() {
        let d = generate(&ForbesConfig::default());
        let linker = nexus_kg::EntityLinker::new(&d.kg);
        let (links, stats) = linker.link_column(d.table.column("Name").unwrap());
        assert!(stats.link_rate() > 0.99);
        let pay = d.table.column("Pay").unwrap();
        let (mut rich, mut rn, mut poor, mut pn) = (0.0, 0usize, 0.0, 0usize);
        for (i, l) in links.iter().enumerate() {
            let Some(id) = l else { continue };
            let Some(nexus_kg::PropertyValue::Literal(v)) = d.kg.property(*id, "net worth") else {
                continue;
            };
            let w = v.as_f64().unwrap();
            if w > 350.0 {
                rich += pay.f64_at(i).unwrap();
                rn += 1;
            } else if w < 120.0 {
                poor += pay.f64_at(i).unwrap();
                pn += 1;
            }
        }
        assert!(rich / rn as f64 > poor / pn as f64 + 10.0);
    }

    #[test]
    fn athletes_have_cups_actors_do_not() {
        let d = generate(&ForbesConfig::default());
        let linker = nexus_kg::EntityLinker::new(&d.kg);
        let name_col = d.table.column("Name").unwrap();
        let cat_col = d.table.column("Category").unwrap();
        let (links, _) = linker.link_column(name_col);
        let mut checked = 0;
        for (i, link) in links.iter().enumerate() {
            let Some(id) = *link else { continue };
            match cat_col.str_at(i) {
                Some("Athletes") => {
                    assert!(d.kg.property(id, "cups").is_some());
                    assert!(d.kg.property(id, "awards").is_none());
                    checked += 1;
                }
                Some("Actors") => {
                    assert!(d.kg.property(id, "cups").is_none());
                    assert!(d.kg.property(id, "awards").is_some());
                    checked += 1;
                }
                _ => {}
            }
        }
        assert!(checked > 100);
    }
}
