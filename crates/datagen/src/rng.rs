//! Seeded randomness helpers shared by the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal sample via Box–Muller (keeps us off external
/// distribution crates).
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal_with(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    mean + sd * normal(rng)
}

/// Samples an index according to non-negative weights.
pub fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// A logistic squash to (0, 1).
pub fn squash(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut rng = StdRng::seed_from_u64(3);
        let i = weighted_index(&mut rng, &[0.0, 0.0]);
        assert!(i < 2);
    }

    #[test]
    fn squash_bounds() {
        assert!(squash(-100.0) >= 0.0 && squash(-100.0) < 0.01);
        assert!(squash(100.0) <= 1.0 && squash(100.0) > 0.99);
        assert!((squash(0.0) - 0.5).abs() < 1e-12);
    }
}
