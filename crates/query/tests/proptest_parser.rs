//! Property-based tests for the SQL layer: display/parse round-trips and
//! executor consistency with a nested-loop reference implementation.

use nexus_query::{execute, parse, Catalog, Predicate};
use nexus_table::{Column, Table, Value};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z][a-zA-Z0-9_]{0,8}").expect("valid regex")
}

fn literal_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 ']{0,10}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_simple_query(t in ident(), o in ident(), table in ident()) {
        prop_assume!(t != o);
        let sql = format!("SELECT {t}, avg({o}) FROM {table} GROUP BY {t}");
        let q = parse(&sql).unwrap();
        let q2 = parse(&q.to_string()).unwrap();
        prop_assert_eq!(q, q2);
    }

    #[test]
    fn roundtrip_with_where(
        t in ident(),
        o in ident(),
        c in ident(),
        v in literal_string(),
        num in -1000i64..1000,
    ) {
        prop_assume!(t != o && t != c && o != c);
        let escaped = v.replace('\'', "''");
        let sql = format!(
            "SELECT {t}, sum({o}) FROM d WHERE {c} = '{escaped}' AND {o} > {num} GROUP BY {t}"
        );
        let q = parse(&sql).unwrap();
        let q2 = parse(&q.to_string()).unwrap();
        prop_assert_eq!(q, q2);
    }

    #[test]
    fn predicate_eval_matches_reference(
        values in proptest::collection::vec(-50i64..50, 1..120),
        threshold in -50i64..50,
    ) {
        let table = Table::new(vec![("v", Column::from_i64(values.clone()))]).unwrap();
        for (sql_op, f) in [
            ("=", Box::new(|a: i64, b: i64| a == b) as Box<dyn Fn(i64, i64) -> bool>),
            ("!=", Box::new(|a, b| a != b)),
            ("<", Box::new(|a, b| a < b)),
            ("<=", Box::new(|a, b| a <= b)),
            (">", Box::new(|a, b| a > b)),
            (">=", Box::new(|a, b| a >= b)),
        ] {
            let q = parse(&format!(
                "SELECT v, count(v) FROM t WHERE v {sql_op} {threshold} GROUP BY v"
            ))
            .unwrap();
            let pred = q.where_clause.as_ref().unwrap();
            let mask = nexus_query::eval_predicate(pred, &table).unwrap();
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(mask.get(i), f(v, threshold), "op {} v {}", sql_op, v);
            }
        }
    }

    #[test]
    fn execute_group_count_matches_reference(
        pairs in proptest::collection::vec(("[ab]{1,2}", -10i64..10), 1..80),
    ) {
        let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
        let vals: Vec<i64> = pairs.iter().map(|(_, v)| *v).collect();
        let table = Table::new(vec![
            ("k", Column::from_strs(&keys)),
            ("v", Column::from_i64(vals)),
        ])
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("t", table);
        let q = parse("SELECT k, count(v) FROM t GROUP BY k").unwrap();
        let out = execute(&q, &catalog).unwrap();
        let mut expect: std::collections::HashMap<String, i64> = Default::default();
        for k in &keys {
            *expect.entry(k.clone()).or_insert(0) += 1;
        }
        prop_assert_eq!(out.n_rows(), expect.len());
        for r in 0..out.n_rows() {
            let k = out.value(r, "k").unwrap().as_str().unwrap().to_string();
            let c = out.value(r, "count(v)").unwrap().as_i64().unwrap();
            prop_assert_eq!(c, expect[&k]);
        }
    }

    #[test]
    fn not_is_complement(
        values in proptest::collection::vec(-20i64..20, 1..80),
        threshold in -20i64..20,
    ) {
        let table = Table::new(vec![("v", Column::from_i64(values))]).unwrap();
        let q = parse(&format!(
            "SELECT v, count(v) FROM t WHERE v < {threshold} GROUP BY v"
        ))
        .unwrap();
        let pred = q.where_clause.unwrap();
        let not_pred = Predicate::Not(Box::new(pred.clone()));
        let mask = nexus_query::eval_predicate(&pred, &table).unwrap();
        let not_mask = nexus_query::eval_predicate(&not_pred, &table).unwrap();
        prop_assert_eq!(mask.count_ones() + not_mask.count_ones(), table.n_rows());
        prop_assert!(!mask.and(&not_mask).any());
    }

    #[test]
    fn string_literals_with_quotes_roundtrip(v in literal_string()) {
        let escaped = v.replace('\'', "''");
        let sql = format!("SELECT a, avg(b) FROM t WHERE c = '{escaped}' GROUP BY a");
        let q = parse(&sql).unwrap();
        match q.where_clause.as_ref().unwrap() {
            Predicate::Compare { value: Value::Str(s), .. } => {
                prop_assert_eq!(s, &v);
            }
            other => prop_assert!(false, "unexpected predicate {other:?}"),
        }
        let q2 = parse(&q.to_string()).unwrap();
        prop_assert_eq!(q, q2);
    }
}
