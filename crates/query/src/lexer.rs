//! SQL tokenizer.

use crate::error::{QueryError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare or double-quoted identifier.
    Ident(String),
    /// Keyword (uppercased).
    Keyword(String),
    /// Single-quoted string literal.
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// Comparison operator: `=`, `!=`, `<>`, `<`, `<=`, `>`, `>=`, `==`.
    Op(String),
}

impl Token {
    /// Human-readable rendering for error messages.
    pub fn display(&self) -> String {
        match self {
            Token::Ident(s) | Token::Keyword(s) | Token::Op(s) => s.clone(),
            Token::Str(s) => format!("'{s}'"),
            Token::Number(n) => n.to_string(),
            Token::Comma => ",".into(),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::Dot => ".".into(),
            Token::Star => "*".into(),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "OR", "NOT", "JOIN", "INNER", "LEFT", "ON",
    "AS", "TRUE", "FALSE", "NULL", "IS",
];

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op("=".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Op("=".into()));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op("!=".into()));
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        position: i,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op("<=".into()));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Op("!=".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Op("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(">=".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Op(">".into()));
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = read_quoted(input, i, '\'')?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '"' => {
                let (s, next) = read_quoted(input, i, '"')?;
                tokens.push(Token::Ident(s));
                i = next;
            }
            '.' if !bytes
                .get(i + 1)
                .map(|b| (*b as char).is_ascii_digit())
                .unwrap_or(false) =>
            {
                tokens.push(Token::Dot);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || (i > start
                            && (bytes[i] == b'-' || bytes[i] == b'+')
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| QueryError::Lex {
                    position: start,
                    message: format!("bad number literal {text:?}"),
                })?;
                tokens.push(Token::Number(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            other => {
                return Err(QueryError::Lex {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

/// Reads a quoted run starting at `start` (which holds the quote), returning
/// the unescaped contents and the index past the closing quote. Doubled
/// quotes escape themselves.
fn read_quoted(input: &str, start: usize, quote: char) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let q = quote as u8;
    let mut i = start + 1;
    let mut out = String::new();
    while i < bytes.len() {
        if bytes[i] == q {
            if bytes.get(i + 1) == Some(&q) {
                out.push(quote);
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy the full (possibly multi-byte) char.
            let ch = input[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(QueryError::Lex {
        position: start,
        message: "unterminated string literal".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks =
            tokenize("SELECT Country, avg(Salary) FROM SO WHERE x = 'Europe' GROUP BY Country")
                .unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("Country".into()));
        assert_eq!(toks[2], Token::Comma);
        assert_eq!(toks[3], Token::Ident("avg".into()));
        assert_eq!(toks[4], Token::LParen);
        assert!(toks.contains(&Token::Str("Europe".into())));
        assert!(toks.contains(&Token::Keyword("GROUP".into())));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a = 1 AND b != 2 OR c <> 3 AND d <= 4 AND e >= 5 AND f < 6 AND g > 7")
            .unwrap();
        let ops: Vec<String> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Op(o) => Some(o.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["=", "!=", "!=", "<=", ">=", "<", ">"]);
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 -3 1e3 -1.5e-2").unwrap();
        let nums: Vec<f64> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Number(n) => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![1.0, 2.5, -3.0, 1000.0, -0.015]);
    }

    #[test]
    fn quoted_identifiers_and_escapes() {
        let toks = tokenize("\"My Column\" = 'it''s'").unwrap();
        assert_eq!(toks[0], Token::Ident("My Column".into()));
        assert_eq!(toks[2], Token::Str("it's".into()));
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select from Where").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[2], Token::Keyword("WHERE".into()));
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("a = 'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a = #").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("x = 'Côte d''Ivoire'").unwrap();
        assert_eq!(toks[2], Token::Str("Côte d'Ivoire".into()));
    }
}
