//! Recursive-descent parser for the supported SQL subset.

use nexus_table::{AggFunc, Value};

use crate::ast::{AggregateQuery, CmpOp, JoinClause, Predicate, SelectItem};
use crate::error::{QueryError, Result};
use crate::lexer::{tokenize, Token};

/// Parses a SQL string into an [`AggregateQuery`].
pub fn parse(input: &str) -> Result<AggregateQuery> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos < p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: &str) -> QueryError {
        QueryError::Parse {
            token: self
                .peek()
                .map(|t| t.display())
                .unwrap_or_else(|| "<eof>".into()),
            message: message.into(),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(&format!("expected {kw}")))
            }
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    /// Identifier, optionally qualified (`table.column` → `column`).
    fn column_ref(&mut self) -> Result<String> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(Token::Dot)) {
            self.pos += 1;
            let col = self.ident()?;
            Ok(col)
        } else {
            Ok(first)
        }
    }

    fn query(&mut self) -> Result<AggregateQuery> {
        self.expect_keyword("SELECT")?;
        let mut select = Vec::new();
        loop {
            select.push(self.select_item()?);
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let from = self.ident()?;

        let mut join = None;
        if self.eat_keyword("INNER")
            || matches!(self.peek(), Some(Token::Keyword(k)) if k == "JOIN")
        {
            self.expect_keyword("JOIN")?;
            let table = self.ident()?;
            self.expect_keyword("ON")?;
            let left_col = self.column_ref()?;
            match self.next() {
                Some(Token::Op(op)) if op == "=" => {}
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected '=' in join condition"));
                }
            }
            let right_col = self.column_ref()?;
            join = Some(JoinClause {
                table,
                left_col,
                right_col,
            });
        }

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        Ok(AggregateQuery {
            select,
            from,
            join,
            where_clause,
            group_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // `ident ( column )` is an aggregate; bare ident is a column.
        let name = self.column_ref()?;
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let func = AggFunc::parse(&name)
                .ok_or_else(|| self.err(&format!("unknown aggregate function {name:?}")))?;
            let column = self.column_ref()?;
            match self.next() {
                Some(Token::RParen) => {}
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ')'"));
                }
            }
            Ok(SelectItem::Aggregate { func, column })
        } else {
            Ok(SelectItem::Column(name))
        }
    }

    // predicate := disjunction
    fn predicate(&mut self) -> Result<Predicate> {
        self.disjunction()
    }

    fn disjunction(&mut self) -> Result<Predicate> {
        let mut left = self.conjunction()?;
        while self.eat_keyword("OR") {
            let right = self.conjunction()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Predicate> {
        let mut left = self.unary()?;
        while self.eat_keyword("AND") {
            let right = self.unary()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Predicate> {
        if self.eat_keyword("NOT") {
            let inner = self.unary()?;
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let inner = self.predicate()?;
            match self.next() {
                Some(Token::RParen) => return Ok(inner),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ')'"));
                }
            }
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate> {
        let column = self.column_ref()?;
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Predicate::IsNull { column, negated });
        }
        let op = match self.next() {
            Some(Token::Op(op)) => CmpOp::parse(&op).ok_or_else(|| self.err("bad operator"))?,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected comparison operator"));
            }
        };
        let value = self.literal()?;
        Ok(Predicate::Compare { column, op, value })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Number(n)) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    Ok(Value::Int(n as i64))
                } else {
                    Ok(Value::Float(n))
                }
            }
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Value::Bool(true)),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Value::Bool(false)),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Value::Null),
            // A bare identifier on the right-hand side is accepted as a
            // string literal for analyst convenience (`Continent = Europe`).
            Some(Token::Ident(s)) => Ok(Value::Str(s)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected literal"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query() {
        let q = parse(
            "SELECT Country, avg(Salary) FROM SO WHERE Continent = 'Europe' GROUP BY Country",
        )
        .unwrap();
        assert_eq!(q.from, "SO");
        assert_eq!(q.exposure(), Some("Country"));
        assert_eq!(q.outcome(), Some((AggFunc::Avg, "Salary")));
        assert_eq!(q.where_clause, Some(Predicate::eq("Continent", "Europe")));
    }

    #[test]
    fn parses_join() {
        let q = parse(
            "SELECT Airline, avg(Delay) FROM flights JOIN airlines ON flights.code = airlines.code GROUP BY Airline",
        )
        .unwrap();
        let j = q.join.unwrap();
        assert_eq!(j.table, "airlines");
        assert_eq!(j.left_col, "code");
        assert_eq!(j.right_col, "code");
    }

    #[test]
    fn parses_complex_where() {
        let q =
            parse("SELECT a, sum(b) FROM t WHERE (x > 3 AND y != 'z') OR NOT w <= 2.5 GROUP BY a")
                .unwrap();
        match q.where_clause.unwrap() {
            Predicate::Or(l, r) => {
                assert!(matches!(*l, Predicate::And(_, _)));
                assert!(matches!(*r, Predicate::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_is_null() {
        let q = parse("SELECT a, count(b) FROM t WHERE b IS NOT NULL GROUP BY a").unwrap();
        assert_eq!(
            q.where_clause,
            Some(Predicate::IsNull {
                column: "b".into(),
                negated: true
            })
        );
    }

    #[test]
    fn bare_identifier_literal() {
        let q = parse("SELECT a, avg(b) FROM t WHERE Continent = Europe GROUP BY a").unwrap();
        assert_eq!(q.where_clause, Some(Predicate::eq("Continent", "Europe")));
    }

    #[test]
    fn multiple_group_by() {
        let q = parse("SELECT s, al, avg(d) FROM f GROUP BY s, al").unwrap();
        assert_eq!(q.group_by, vec!["s", "al"]);
        assert_eq!(q.exposure(), Some("s"));
    }

    #[test]
    fn integer_vs_float_literals() {
        let q = parse("SELECT a, avg(b) FROM t WHERE x = 3 AND y = 2.5 GROUP BY a").unwrap();
        let cols = format!("{}", q.where_clause.unwrap());
        assert!(cols.contains("x = 3"));
        assert!(cols.contains("y = 2.5"));
    }

    #[test]
    fn errors() {
        assert!(parse("FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT med(a) FROM t").is_err());
        assert!(parse("SELECT a, avg(b) FROM t GROUP BY a extra").is_err());
        assert!(parse("SELECT a, avg(b FROM t GROUP BY a").is_err());
        assert!(parse("SELECT a, avg(b) FROM t WHERE x GROUP BY a").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let q = parse(
            "SELECT Country, avg(Salary) FROM SO WHERE Continent = 'Europe' AND Age > 30 GROUP BY Country",
        )
        .unwrap();
        let q2 = parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
