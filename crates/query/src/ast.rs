//! The abstract syntax of the supported SQL subset.
//!
//! NEXUS explains queries of the form
//!
//! ```sql
//! SELECT T, agg(O) FROM D [JOIN R ON D.k = R.k] [WHERE C] GROUP BY T
//! ```
//!
//! where `T` is the exposure (grouping attribute), `O` the outcome
//! (aggregated attribute), and `C` the context.

use std::fmt;

use nexus_table::{AggFunc, Value};

/// A comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Parses an operator token.
    pub fn parse(s: &str) -> Option<CmpOp> {
        match s {
            "=" => Some(CmpOp::Eq),
            "!=" => Some(CmpOp::Ne),
            "<" => Some(CmpOp::Lt),
            "<=" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" => Some(CmpOp::Ge),
            _ => None,
        }
    }

    /// SQL rendering.
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A boolean predicate over table rows (the query context `C`).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// `column op literal`.
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `column IS NULL` / `column IS NOT NULL`.
    IsNull {
        /// Column name.
        column: String,
        /// True for `IS NULL`, false for `IS NOT NULL`.
        negated: bool,
    },
}

impl Predicate {
    /// Convenience constructor for equality.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Columns referenced by the predicate, in first-mention order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::Compare { column, .. } | Predicate::IsNull { column, .. } => {
                if !out.contains(&column.as_str()) {
                    out.push(column);
                }
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
            Predicate::Compare { column, op, value } => match value {
                Value::Str(s) => {
                    write!(f, "{column} {} '{}'", op.sql(), s.replace('\'', "''"))
                }
                other => write!(f, "{column} {} {other}", op.sql()),
            },
            Predicate::IsNull { column, negated } => {
                if *negated {
                    write!(f, "{column} IS NOT NULL")
                } else {
                    write!(f, "{column} IS NULL")
                }
            }
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A bare column (must also be in GROUP BY).
    Column(String),
    /// `agg(column)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column.
        column: String,
    },
}

/// A `JOIN other ON left = right` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table's name.
    pub table: String,
    /// Join key on the FROM table.
    pub left_col: String,
    /// Join key on the joined table.
    pub right_col: String,
}

/// A parsed aggregate group-by query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQuery {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM table.
    pub from: String,
    /// Optional inner join.
    pub join: Option<JoinClause>,
    /// Optional WHERE predicate (the context `C`).
    pub where_clause: Option<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
}

impl AggregateQuery {
    /// The exposure `T`: the first grouping attribute.
    pub fn exposure(&self) -> Option<&str> {
        self.group_by.first().map(|s| s.as_str())
    }

    /// The outcome `O`: the first aggregated attribute, with its function.
    pub fn outcome(&self) -> Option<(AggFunc, &str)> {
        self.select.iter().find_map(|s| match s {
            SelectItem::Aggregate { func, column } => Some((*func, column.as_str())),
            _ => None,
        })
    }

    /// The context `C` (WHERE predicate), if any.
    pub fn context(&self) -> Option<&Predicate> {
        self.where_clause.as_ref()
    }
}

impl fmt::Display for AggregateQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let items: Vec<String> = self
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Column(c) => c.clone(),
                SelectItem::Aggregate { func, column } => format!("{}({column})", func.name()),
            })
            .collect();
        write!(f, "SELECT {} FROM {}", items.join(", "), self.from)?;
        if let Some(j) = &self.join {
            write!(f, " JOIN {} ON {} = {}", j.table, j.left_col, j.right_col)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_outcome_context() {
        let q = AggregateQuery {
            select: vec![
                SelectItem::Column("Country".into()),
                SelectItem::Aggregate {
                    func: AggFunc::Avg,
                    column: "Salary".into(),
                },
            ],
            from: "SO".into(),
            join: None,
            where_clause: Some(Predicate::eq("Continent", "Europe")),
            group_by: vec!["Country".into()],
        };
        assert_eq!(q.exposure(), Some("Country"));
        assert_eq!(q.outcome(), Some((AggFunc::Avg, "Salary")));
        assert!(q.context().is_some());
        let s = q.to_string();
        assert!(s.contains("SELECT Country, avg(Salary) FROM SO"));
        assert!(s.contains("WHERE Continent = 'Europe'"));
        assert!(s.contains("GROUP BY Country"));
    }

    #[test]
    fn predicate_columns_and_display() {
        let p = Predicate::eq("a", 1i64)
            .and(Predicate::Not(Box::new(Predicate::eq("b", "x"))))
            .and(Predicate::IsNull {
                column: "a".into(),
                negated: true,
            });
        assert_eq!(p.columns(), vec!["a", "b"]);
        let s = p.to_string();
        assert!(s.contains("a = 1"));
        assert!(s.contains("NOT (b = 'x')"));
        assert!(s.contains("a IS NOT NULL"));
    }

    #[test]
    fn cmp_op_roundtrip() {
        for op in ["=", "!=", "<", "<=", ">", ">="] {
            assert_eq!(CmpOp::parse(op).unwrap().sql(), op);
        }
        assert_eq!(CmpOp::parse("~"), None);
    }
}
