//! The abstract syntax of the supported SQL subset.
//!
//! NEXUS explains queries of the form
//!
//! ```sql
//! SELECT T, agg(O) FROM D [JOIN R ON D.k = R.k] [WHERE C] GROUP BY T
//! ```
//!
//! where `T` is the exposure (grouping attribute), `O` the outcome
//! (aggregated attribute), and `C` the context.

use std::fmt;

use nexus_table::{AggFunc, Value};

/// A comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Parses an operator token.
    pub fn parse(s: &str) -> Option<CmpOp> {
        match s {
            "=" => Some(CmpOp::Eq),
            "!=" => Some(CmpOp::Ne),
            "<" => Some(CmpOp::Lt),
            "<=" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" => Some(CmpOp::Ge),
            _ => None,
        }
    }

    /// SQL rendering.
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A boolean predicate over table rows (the query context `C`).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// `column op literal`.
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `column IS NULL` / `column IS NOT NULL`.
    IsNull {
        /// Column name.
        column: String,
        /// True for `IS NULL`, false for `IS NOT NULL`.
        negated: bool,
    },
}

impl Predicate {
    /// Convenience constructor for equality.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Columns referenced by the predicate, in first-mention order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::Compare { column, .. } | Predicate::IsNull { column, .. } => {
                if !out.contains(&column.as_str()) {
                    out.push(column);
                }
            }
        }
    }

    /// Canonical rendering for cache keys: commutative `AND`/`OR` chains
    /// are flattened (associativity) and their operands sorted, literals
    /// carry a type tag, and floats are rendered by bit pattern.
    pub fn canonical(&self) -> String {
        match self {
            Predicate::And(..) => {
                let mut parts = Vec::new();
                self.collect_chain(true, &mut parts);
                parts.sort();
                format!("and({})", parts.join(";"))
            }
            Predicate::Or(..) => {
                let mut parts = Vec::new();
                self.collect_chain(false, &mut parts);
                parts.sort();
                format!("or({})", parts.join(";"))
            }
            Predicate::Not(p) => format!("not({})", p.canonical()),
            Predicate::Compare { column, op, value } => {
                format!("cmp({column}{}{})", op.sql(), canonical_value(value))
            }
            Predicate::IsNull { column, negated } => {
                if *negated {
                    format!("notnull({column})")
                } else {
                    format!("null({column})")
                }
            }
        }
    }

    /// Collects the canonical operands of a maximal `AND` (or `OR`) chain.
    fn collect_chain(&self, conjunctive: bool, out: &mut Vec<String>) {
        match (self, conjunctive) {
            (Predicate::And(a, b), true) | (Predicate::Or(a, b), false) => {
                a.collect_chain(conjunctive, out);
                b.collect_chain(conjunctive, out);
            }
            _ => out.push(self.canonical()),
        }
    }
}

/// Type-tagged literal rendering used by [`Predicate::canonical`].
fn canonical_value(value: &Value) -> String {
    match value {
        Value::Null => "n:".to_string(),
        Value::Int(v) => format!("i:{v}"),
        Value::Float(v) => format!("f:{:016x}", v.to_bits()),
        Value::Str(s) => format!("s:{s}"),
        Value::Bool(b) => format!("b:{b}"),
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
            Predicate::Compare { column, op, value } => match value {
                Value::Str(s) => {
                    write!(f, "{column} {} '{}'", op.sql(), s.replace('\'', "''"))
                }
                other => write!(f, "{column} {} {other}", op.sql()),
            },
            Predicate::IsNull { column, negated } => {
                if *negated {
                    write!(f, "{column} IS NOT NULL")
                } else {
                    write!(f, "{column} IS NULL")
                }
            }
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A bare column (must also be in GROUP BY).
    Column(String),
    /// `agg(column)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column.
        column: String,
    },
}

/// A `JOIN other ON left = right` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table's name.
    pub table: String,
    /// Join key on the FROM table.
    pub left_col: String,
    /// Join key on the joined table.
    pub right_col: String,
}

/// A parsed aggregate group-by query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQuery {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM table.
    pub from: String,
    /// Optional inner join.
    pub join: Option<JoinClause>,
    /// Optional WHERE predicate (the context `C`).
    pub where_clause: Option<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
}

impl AggregateQuery {
    /// The exposure `T`: the first grouping attribute.
    pub fn exposure(&self) -> Option<&str> {
        self.group_by.first().map(|s| s.as_str())
    }

    /// The outcome `O`: the first aggregated attribute, with its function.
    pub fn outcome(&self) -> Option<(AggFunc, &str)> {
        self.select.iter().find_map(|s| match s {
            SelectItem::Aggregate { func, column } => Some((*func, column.as_str())),
            _ => None,
        })
    }

    /// The context `C` (WHERE predicate), if any.
    pub fn context(&self) -> Option<&Predicate> {
        self.where_clause.as_ref()
    }

    /// A canonical textual signature of the query's semantics.
    ///
    /// Two parses that mean the same thing produce the same signature even
    /// when the SQL text differed: keyword case and whitespace are gone
    /// after parsing, commutative `AND`/`OR` chains are flattened and
    /// sorted, and literals are rendered with an unambiguous type tag
    /// (floats by bit pattern, so `1.0` and `1` stay distinct and NaN
    /// payloads survive). The resident explanation server uses this — not
    /// the raw SQL string — as the query component of its cache key.
    pub fn canonical_signature(&self) -> String {
        let mut out = String::from("v1|select=");
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match item {
                SelectItem::Column(c) => out.push_str(c),
                SelectItem::Aggregate { func, column } => {
                    out.push_str(func.name());
                    out.push('(');
                    out.push_str(column);
                    out.push(')');
                }
            }
        }
        out.push_str("|from=");
        out.push_str(&self.from);
        out.push_str("|join=");
        if let Some(j) = &self.join {
            out.push_str(&format!("{}:{}={}", j.table, j.left_col, j.right_col));
        }
        out.push_str("|where=");
        if let Some(w) = &self.where_clause {
            out.push_str(&w.canonical());
        }
        out.push_str("|group_by=");
        out.push_str(&self.group_by.join(","));
        out
    }

    /// FNV-1a hash of [`canonical_signature`](Self::canonical_signature).
    pub fn signature_hash(&self) -> u64 {
        let mut h = nexus_table::Fnv64::new();
        h.write_str(&self.canonical_signature());
        h.finish()
    }
}

impl fmt::Display for AggregateQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let items: Vec<String> = self
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Column(c) => c.clone(),
                SelectItem::Aggregate { func, column } => format!("{}({column})", func.name()),
            })
            .collect();
        write!(f, "SELECT {} FROM {}", items.join(", "), self.from)?;
        if let Some(j) = &self.join {
            write!(f, " JOIN {} ON {} = {}", j.table, j.left_col, j.right_col)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposure_outcome_context() {
        let q = AggregateQuery {
            select: vec![
                SelectItem::Column("Country".into()),
                SelectItem::Aggregate {
                    func: AggFunc::Avg,
                    column: "Salary".into(),
                },
            ],
            from: "SO".into(),
            join: None,
            where_clause: Some(Predicate::eq("Continent", "Europe")),
            group_by: vec!["Country".into()],
        };
        assert_eq!(q.exposure(), Some("Country"));
        assert_eq!(q.outcome(), Some((AggFunc::Avg, "Salary")));
        assert!(q.context().is_some());
        let s = q.to_string();
        assert!(s.contains("SELECT Country, avg(Salary) FROM SO"));
        assert!(s.contains("WHERE Continent = 'Europe'"));
        assert!(s.contains("GROUP BY Country"));
    }

    #[test]
    fn predicate_columns_and_display() {
        let p = Predicate::eq("a", 1i64)
            .and(Predicate::Not(Box::new(Predicate::eq("b", "x"))))
            .and(Predicate::IsNull {
                column: "a".into(),
                negated: true,
            });
        assert_eq!(p.columns(), vec!["a", "b"]);
        let s = p.to_string();
        assert!(s.contains("a = 1"));
        assert!(s.contains("NOT (b = 'x')"));
        assert!(s.contains("a IS NOT NULL"));
    }

    #[test]
    fn cmp_op_roundtrip() {
        for op in ["=", "!=", "<", "<=", ">", ">="] {
            assert_eq!(CmpOp::parse(op).unwrap().sql(), op);
        }
        assert_eq!(CmpOp::parse("~"), None);
    }

    #[test]
    fn canonical_signature_normalizes_commutative_chains() {
        let base = AggregateQuery {
            select: vec![
                SelectItem::Column("Country".into()),
                SelectItem::Aggregate {
                    func: AggFunc::Avg,
                    column: "Salary".into(),
                },
            ],
            from: "t".into(),
            join: None,
            where_clause: Some(Predicate::eq("a", 1i64).and(Predicate::eq("b", "x"))),
            group_by: vec!["Country".into()],
        };
        let mut flipped = base.clone();
        flipped.where_clause = Some(Predicate::eq("b", "x").and(Predicate::eq("a", 1i64)));
        assert_eq!(base.canonical_signature(), flipped.canonical_signature());
        assert_eq!(base.signature_hash(), flipped.signature_hash());

        // Associativity: (a AND b) AND c ≡ a AND (b AND c).
        let abc = Predicate::eq("a", 1i64)
            .and(Predicate::eq("b", 2i64))
            .and(Predicate::eq("c", 3i64));
        let a_bc =
            Predicate::eq("a", 1i64).and(Predicate::eq("b", 2i64).and(Predicate::eq("c", 3i64)));
        assert_eq!(abc.canonical(), a_bc.canonical());
    }

    #[test]
    fn canonical_signature_distinguishes_semantics() {
        let q = |sql_where: Option<Predicate>, group: &str| AggregateQuery {
            select: vec![SelectItem::Aggregate {
                func: AggFunc::Avg,
                column: "Salary".into(),
            }],
            from: "t".into(),
            join: None,
            where_clause: sql_where,
            group_by: vec![group.into()],
        };
        let a = q(None, "Country");
        assert_ne!(
            a.canonical_signature(),
            q(None, "Continent").canonical_signature()
        );
        assert_ne!(
            a.canonical_signature(),
            q(Some(Predicate::eq("g", "m")), "Country").canonical_signature()
        );
        // Int 1 and Float 1.0 literals are distinct under the type tags.
        assert_ne!(
            q(Some(Predicate::eq("x", 1i64)), "Country").canonical_signature(),
            q(Some(Predicate::eq("x", 1.0)), "Country").canonical_signature()
        );
        // AND vs OR of the same operands are distinct.
        let and = Predicate::eq("a", 1i64).and(Predicate::eq("b", 2i64));
        let or = Predicate::Or(
            Box::new(Predicate::eq("a", 1i64)),
            Box::new(Predicate::eq("b", 2i64)),
        );
        assert_ne!(and.canonical(), or.canonical());
    }
}
