//! # nexus-query
//!
//! A SQL subset for the NEXUS system: aggregate group-by queries with WHERE
//! contexts and inner joins — the query class whose unexpected correlations
//! the paper explains.
//!
//! ```
//! use nexus_query::{parse, execute, Catalog};
//! use nexus_table::{Table, Column};
//!
//! let t = Table::new(vec![
//!     ("Country", Column::from_strs(&["us", "fr", "us"])),
//!     ("Salary", Column::from_f64(vec![90.0, 60.0, 80.0])),
//! ]).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.register("SO", t);
//!
//! let q = parse("SELECT Country, avg(Salary) FROM SO GROUP BY Country").unwrap();
//! assert_eq!(q.exposure(), Some("Country"));
//! let result = execute(&q, &catalog).unwrap();
//! assert_eq!(result.n_rows(), 2);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{AggregateQuery, CmpOp, JoinClause, Predicate, SelectItem};
pub use error::{QueryError, Result};
pub use exec::{context_mask, eval_predicate, execute, Catalog};
pub use lexer::{tokenize, Token};
pub use parser::parse;
