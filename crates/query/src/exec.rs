//! Query execution against an in-memory catalog of tables.

use std::collections::HashMap;

#[cfg(test)]
use nexus_table::Column;
use nexus_table::{aggregate, join, Bitmap, ColumnData, JoinType, Table, Value};

use crate::ast::{AggregateQuery, CmpOp, Predicate, SelectItem};
use crate::error::{QueryError, Result};

/// A named collection of tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table under `name` (replacing any previous table).
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Looks up a table.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::TableNotFound(name.to_string()))
    }

    /// Names of registered tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

/// Evaluates a predicate over a table into a row mask.
///
/// Three-valued-logic note: comparisons against NULL evaluate to false (not
/// unknown), and `NOT` is plain boolean negation of that — the pragmatic
/// semantics analysts expect from a filter.
pub fn eval_predicate(pred: &Predicate, table: &Table) -> Result<Bitmap> {
    match pred {
        Predicate::And(a, b) => Ok(eval_predicate(a, table)?.and(&eval_predicate(b, table)?)),
        Predicate::Or(a, b) => Ok(eval_predicate(a, table)?.or(&eval_predicate(b, table)?)),
        Predicate::Not(p) => Ok(eval_predicate(p, table)?.not()),
        Predicate::IsNull { column, negated } => {
            let col = table.column(column)?;
            let mask: Bitmap = (0..col.len()).map(|i| col.is_null(i) != *negated).collect();
            Ok(mask)
        }
        Predicate::Compare { column, op, value } => compare_column(table, column, *op, value),
    }
}

fn compare_column(table: &Table, column: &str, op: CmpOp, value: &Value) -> Result<Bitmap> {
    let col = table.column(column)?;
    let n = col.len();
    if value.is_null() {
        // SQL: comparisons with NULL match nothing.
        return Ok(Bitmap::with_value(n, false));
    }
    // Fast paths per column type.
    match (col.data(), value) {
        (ColumnData::Utf8(arr), Value::Str(s)) => {
            // Compare against dictionary entries once.
            let dict_match: Vec<bool> = arr
                .dict()
                .iter()
                .map(|d| cmp_str(d.as_str(), s, op))
                .collect();
            Ok((0..n)
                .map(|i| !col.is_null(i) && dict_match[arr.codes()[i] as usize])
                .collect())
        }
        (_, Value::Str(_)) => Err(QueryError::Semantic(format!(
            "cannot compare non-string column {column:?} with a string literal"
        ))),
        (ColumnData::Bool(v), Value::Bool(b)) => Ok((0..n)
            .map(|i| !col.is_null(i) && cmp_ord(v[i], *b, op))
            .collect()),
        _ => {
            let target = value.as_f64().ok_or_else(|| {
                QueryError::Semantic(format!(
                    "cannot compare column {column:?} ({}) with literal {value}",
                    col.dtype()
                ))
            })?;
            if !col.dtype().is_numeric() {
                return Err(QueryError::Semantic(format!(
                    "cannot compare non-numeric column {column:?} with a number"
                )));
            }
            Ok((0..n)
                .map(|i| match col.f64_at(i) {
                    Some(v) => cmp_f64(v, target, op),
                    None => false,
                })
                .collect())
        }
    }
}

fn cmp_str(a: &str, b: &str, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn cmp_ord<T: PartialOrd>(a: T, b: T, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn cmp_f64(a: f64, b: f64, op: CmpOp) -> bool {
    cmp_ord(a, b, op)
}

/// Executes an aggregate query against the catalog.
///
/// Pipeline: FROM → JOIN → WHERE → GROUP BY + aggregates, mirroring SQL
/// semantics for the supported subset.
pub fn execute(query: &AggregateQuery, catalog: &Catalog) -> Result<Table> {
    let mut working = catalog.get(&query.from)?.clone();

    if let Some(j) = &query.join {
        let right = catalog.get(&j.table)?;
        working = join(&working, right, &j.left_col, &j.right_col, JoinType::Inner)?;
    }

    if let Some(pred) = &query.where_clause {
        let mask = eval_predicate(pred, &working)?;
        working = working.filter(&mask)?;
    }

    if query.group_by.is_empty() {
        return Err(QueryError::Semantic(
            "NEXUS queries require a GROUP BY clause (the exposure attribute)".into(),
        ));
    }

    // Numerical exposures are binned (Section 2.1: "To handle a numerical
    // exposure, one may bin this attribute"): continuous or high-cardinality
    // numeric group keys become quantile-bin interval labels.
    for key in &query.group_by {
        let col = working.column(key)?;
        let needs_binning = match col.dtype() {
            nexus_table::DataType::Float64 => true,
            nexus_table::DataType::Int64 => col.distinct_count() > 24,
            _ => false,
        };
        if needs_binning {
            let binned = nexus_table::bin_to_column(col, nexus_table::BinStrategy::Quantile(8))?;
            working.replace_column(key, binned)?;
        }
    }

    // Validate that bare SELECT columns appear in GROUP BY.
    for item in &query.select {
        if let SelectItem::Column(c) = item {
            if !query.group_by.contains(c) {
                return Err(QueryError::Semantic(format!(
                    "column {c:?} must appear in GROUP BY"
                )));
            }
        }
    }

    let keys: Vec<&str> = query.group_by.iter().map(|s| s.as_str()).collect();
    let aggs: Vec<(nexus_table::AggFunc, &str)> = query
        .select
        .iter()
        .filter_map(|s| match s {
            SelectItem::Aggregate { func, column } => Some((*func, column.as_str())),
            _ => None,
        })
        .collect();
    if aggs.is_empty() {
        return Err(QueryError::Semantic(
            "NEXUS queries require at least one aggregate (the outcome attribute)".into(),
        ));
    }
    Ok(aggregate(&working, &keys, &aggs)?)
}

/// Convenience: builds the context mask of a query over its (possibly
/// joined) input table — all rows when there is no WHERE clause.
pub fn context_mask(query: &AggregateQuery, table: &Table) -> Result<Bitmap> {
    match &query.where_clause {
        Some(p) => eval_predicate(p, table),
        None => Ok(Bitmap::with_value(table.n_rows(), true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn catalog() -> Catalog {
        let so = Table::new(vec![
            (
                "Country",
                Column::from_strs(&["us", "fr", "us", "de", "fr", "de"]),
            ),
            (
                "Continent",
                Column::from_strs(&["na", "eu", "na", "eu", "eu", "eu"]),
            ),
            (
                "Salary",
                Column::from_f64(vec![90.0, 60.0, 80.0, 70.0, 62.0, 72.0]),
            ),
            ("Age", Column::from_i64(vec![25, 30, 45, 50, 28, 33])),
        ])
        .unwrap();
        let countries = Table::new(vec![
            ("Country", Column::from_strs(&["us", "fr", "de"])),
            ("gdp", Column::from_f64(vec![21.0, 2.6, 3.8])),
        ])
        .unwrap();
        let mut c = Catalog::new();
        c.register("SO", so);
        c.register("countries", countries);
        c
    }

    #[test]
    fn basic_group_by() {
        let c = catalog();
        let q = parse("SELECT Country, avg(Salary) FROM SO GROUP BY Country").unwrap();
        let r = execute(&q, &c).unwrap();
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.value(0, "avg(Salary)").unwrap(), Value::Float(85.0));
    }

    #[test]
    fn where_filters_rows() {
        let c = catalog();
        let q =
            parse("SELECT Country, avg(Salary) FROM SO WHERE Continent = 'eu' GROUP BY Country")
                .unwrap();
        let r = execute(&q, &c).unwrap();
        assert_eq!(r.n_rows(), 2); // fr, de
        assert_eq!(r.value(0, "Country").unwrap(), Value::Str("fr".into()));
        assert_eq!(r.value(0, "avg(Salary)").unwrap(), Value::Float(61.0));
    }

    #[test]
    fn numeric_and_compound_predicates() {
        let c = catalog();
        let q = parse(
            "SELECT Country, count(Salary) FROM SO WHERE Age >= 30 AND Salary < 75 GROUP BY Country",
        )
        .unwrap();
        let r = execute(&q, &c).unwrap();
        // matches: fr(30,60), de(50,70), de(33,72)
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.value(1, "count(Salary)").unwrap(), Value::Int(2));
    }

    #[test]
    fn join_pulls_right_columns() {
        let c = catalog();
        let q = parse(
            "SELECT Country, avg(gdp) FROM SO JOIN countries ON SO.Country = countries.Country GROUP BY Country",
        )
        .unwrap();
        let r = execute(&q, &c).unwrap();
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.value(0, "avg(gdp)").unwrap(), Value::Float(21.0));
    }

    #[test]
    fn or_and_not_predicates() {
        let c = catalog();
        let q = parse(
            "SELECT Country, count(Salary) FROM SO WHERE Country = 'us' OR NOT Age < 50 GROUP BY Country",
        )
        .unwrap();
        let r = execute(&q, &c).unwrap();
        // us rows (2) plus de(50)
        let total: i64 = (0..r.n_rows())
            .map(|i| r.value(i, "count(Salary)").unwrap().as_i64().unwrap())
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn missing_group_by_rejected() {
        let c = catalog();
        let q = parse("SELECT Country, avg(Salary) FROM SO").unwrap();
        assert!(matches!(execute(&q, &c), Err(QueryError::Semantic(_))));
    }

    #[test]
    fn missing_aggregate_rejected() {
        let c = catalog();
        let q = parse("SELECT Country FROM SO GROUP BY Country").unwrap();
        assert!(matches!(execute(&q, &c), Err(QueryError::Semantic(_))));
    }

    #[test]
    fn bare_column_not_grouped_rejected() {
        let c = catalog();
        let q = parse("SELECT Age, avg(Salary) FROM SO GROUP BY Country").unwrap();
        assert!(matches!(execute(&q, &c), Err(QueryError::Semantic(_))));
    }

    #[test]
    fn unknown_table_and_column() {
        let c = catalog();
        let q = parse("SELECT a, avg(b) FROM nope GROUP BY a").unwrap();
        assert!(matches!(execute(&q, &c), Err(QueryError::TableNotFound(_))));
        let q = parse("SELECT zzz, avg(Salary) FROM SO GROUP BY zzz").unwrap();
        assert!(execute(&q, &c).is_err());
    }

    #[test]
    fn type_mismatch_in_predicate() {
        let c = catalog();
        let q = parse("SELECT Country, avg(Salary) FROM SO WHERE Age = 'old' GROUP BY Country")
            .unwrap();
        assert!(matches!(execute(&q, &c), Err(QueryError::Semantic(_))));
        let q = parse("SELECT Country, avg(Salary) FROM SO WHERE Country > 3 GROUP BY Country")
            .unwrap();
        assert!(matches!(execute(&q, &c), Err(QueryError::Semantic(_))));
    }

    #[test]
    fn is_null_predicate() {
        let t = Table::new(vec![
            ("k", Column::from_strs(&["a", "a", "b"])),
            ("v", Column::from_opt_f64(vec![Some(1.0), None, Some(2.0)])),
        ])
        .unwrap();
        let mut c = Catalog::new();
        c.register("t", t);
        let q = parse("SELECT k, count(v) FROM t WHERE v IS NOT NULL GROUP BY k").unwrap();
        let r = execute(&q, &c).unwrap();
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.value(0, "count(v)").unwrap(), Value::Int(1));
    }

    #[test]
    fn numeric_exposure_is_binned() {
        // Grouping by a continuous column bins it into quantile intervals
        // (Section 2.1's numerical-exposure rule).
        let t = Table::new(vec![
            (
                "age",
                Column::from_f64((0..100).map(|i| i as f64).collect()),
            ),
            (
                "salary",
                Column::from_f64((0..100).map(|i| (i * 10) as f64).collect()),
            ),
        ])
        .unwrap();
        let mut c = Catalog::new();
        c.register("t", t);
        let q = parse("SELECT age, avg(salary) FROM t GROUP BY age").unwrap();
        let r = execute(&q, &c).unwrap();
        assert!(r.n_rows() <= 8, "expected ≤ 8 bins, got {}", r.n_rows());
        assert!(r.n_rows() >= 4);
        // Group labels are intervals.
        let label = r.value(0, "age").unwrap().to_string();
        assert!(label.starts_with('['), "{label}");
    }

    #[test]
    fn small_integer_exposure_not_binned() {
        let t = Table::new(vec![
            ("stars", Column::from_i64((0..60).map(|i| i % 5).collect())),
            ("v", Column::from_f64(vec![1.0; 60])),
        ])
        .unwrap();
        let mut c = Catalog::new();
        c.register("t", t);
        let q = parse("SELECT stars, avg(v) FROM t GROUP BY stars").unwrap();
        let r = execute(&q, &c).unwrap();
        assert_eq!(r.n_rows(), 5);
    }

    #[test]
    fn context_mask_counts() {
        let c = catalog();
        let q =
            parse("SELECT Country, avg(Salary) FROM SO WHERE Continent = 'eu' GROUP BY Country")
                .unwrap();
        let mask = context_mask(&q, c.get("SO").unwrap()).unwrap();
        assert_eq!(mask.count_ones(), 4);
        let q2 = parse("SELECT Country, avg(Salary) FROM SO GROUP BY Country").unwrap();
        let mask2 = context_mask(&q2, c.get("SO").unwrap()).unwrap();
        assert!(mask2.all());
    }

    #[test]
    fn null_comparisons_match_nothing() {
        let t = Table::new(vec![
            ("k", Column::from_strs(&["a", "b"])),
            ("v", Column::from_opt_f64(vec![None, Some(1.0)])),
        ])
        .unwrap();
        let mask = eval_predicate(
            &Predicate::Compare {
                column: "v".into(),
                op: CmpOp::Ne,
                value: Value::Float(99.0),
            },
            &t,
        )
        .unwrap();
        // NULL != 99 is false under our pragmatic semantics.
        assert_eq!(mask.ones(), vec![1]);
    }
}
