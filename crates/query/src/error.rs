//! Error types for the query crate.

use std::fmt;

use nexus_table::TableError;

/// Errors produced while lexing, parsing, or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error with byte position.
    Lex {
        /// Byte offset in the input.
        position: usize,
        /// Description.
        message: String,
    },
    /// Syntax error with the offending token.
    Parse {
        /// Token text (or `<eof>`).
        token: String,
        /// Description.
        message: String,
    },
    /// A referenced table is not in the catalog.
    TableNotFound(String),
    /// Semantic error (e.g. aggregate of a non-numeric column).
    Semantic(String),
    /// Underlying table error.
    Table(TableError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse { token, message } => {
                write!(f, "parse error near {token:?}: {message}")
            }
            QueryError::TableNotFound(t) => write!(f, "table not found: {t:?}"),
            QueryError::Semantic(m) => write!(f, "semantic error: {m}"),
            QueryError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<TableError> for QueryError {
    fn from(e: TableError) -> Self {
        QueryError::Table(e)
    }
}

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::Parse {
            token: "FROM".into(),
            message: "expected identifier".into(),
        };
        assert!(e.to_string().contains("FROM"));
        let e: QueryError = TableError::ColumnNotFound("x".into()).into();
        assert!(matches!(e, QueryError::Table(_)));
    }
}
