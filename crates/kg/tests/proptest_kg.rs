//! Property-based tests for the knowledge-graph substrate: normalization
//! invariants, linker round-trips, and TSV serialization round-trips.

use proptest::prelude::*;

use nexus_kg::{
    normalize, read_kg, write_kg, EntityLinker, KnowledgeGraph, LinkOutcome, PropertyValue,
};
use nexus_table::Value;

proptest! {
    /// `normalize` is idempotent: a normalized form normalizes to itself.
    #[test]
    fn normalize_idempotent(s in ".*") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once);
    }

    /// Normalized forms are canonical: no uppercase letters, no leading or
    /// trailing space, and no run of consecutive spaces.
    #[test]
    fn normalize_canonical_shape(s in ".*") {
        let n = normalize(&s);
        prop_assert!(!n.starts_with(' '), "{n:?}");
        prop_assert!(!n.ends_with(' '), "{n:?}");
        prop_assert!(!n.contains("  "), "{n:?}");
        // Lowercasing is a fixpoint. (`!is_uppercase()` would be too
        // strong: letters like 'ϒ' U+03D2 are uppercase with no lowercase
        // mapping, and `normalize` rightly keeps them.)
        prop_assert!(
            n.chars().all(|c| c.to_lowercase().eq(std::iter::once(c))),
            "{n:?}"
        );
        prop_assert!(n.chars().all(|c| c.is_alphanumeric() || c == ' '), "{n:?}");
    }

    /// Every entity is found by its exact name, by a case-mangled variant,
    /// and by a whitespace-padded variant — the linker keys on normalized
    /// surface forms.
    #[test]
    fn linker_roundtrips_distinct_names(words in prop::collection::vec("[a-z]{1,10}", 1..16)) {
        let mut kg = KnowledgeGraph::new();
        // The index suffix keeps normalized forms pairwise distinct even
        // when the generated words collide.
        let ids: Vec<_> = words
            .iter()
            .enumerate()
            .map(|(i, w)| kg.add_entity(format!("{w} {i}"), "Thing"))
            .collect();
        let linker = EntityLinker::new(&kg);
        for (i, w) in words.iter().enumerate() {
            let name = format!("{w} {i}");
            prop_assert_eq!(linker.link(&name), LinkOutcome::Linked(ids[i]));
            prop_assert_eq!(linker.link(&name.to_uppercase()), LinkOutcome::Linked(ids[i]));
            prop_assert_eq!(linker.link(&format!("  {name}  ")), LinkOutcome::Linked(ids[i]));
        }
    }

    /// An alias shared by two entities is ambiguous, never silently linked
    /// to either.
    #[test]
    fn shared_alias_is_ambiguous(w in "[a-z]{3,10}") {
        let mut kg = KnowledgeGraph::new();
        let a = kg.add_entity(format!("{w} one"), "Thing");
        let b = kg.add_entity(format!("{w} two"), "Thing");
        kg.add_alias(a, format!("{w} shared"));
        kg.add_alias(b, format!("{w} shared"));
        let linker = EntityLinker::new(&kg);
        prop_assert_eq!(linker.link(&format!("{w} shared")), LinkOutcome::Ambiguous);
        // The unambiguous canonical names still resolve.
        prop_assert_eq!(linker.link(&format!("{w} one")), LinkOutcome::Linked(a));
        prop_assert_eq!(linker.link(&format!("{w} two")), LinkOutcome::Linked(b));
    }

    /// Writing a graph to the TSV triple format and reading it back
    /// preserves entities (name, class, aliases) and every property value.
    /// Strings are prefixed so they cannot be sniffed back as a number or
    /// boolean; floats carry a forced fractional part so they cannot be
    /// re-read as integers (both are documented limits of the bare-string
    /// format, not of this test).
    #[test]
    fn tsv_roundtrip_preserves_graph(
        spec in prop::collection::vec(
            (
                "[a-z]{1,8}",                        // name word
                0..3usize,                           // class choice
                prop::collection::vec(
                    prop_oneof![
                        any::<i64>().prop_map(Value::Int),
                        (-1_000_000i32..1_000_000).prop_map(|t| Value::Float(t as f64 + 0.25)),
                        "[a-z]{1,8}".prop_map(|s| Value::Str(format!("s {s}"))),
                        any::<bool>().prop_map(Value::Bool),
                    ],
                    0..4,
                ),
                any::<bool>(),                       // alias?
                any::<bool>(),                       // link to previous entity?
            ),
            1..10,
        ),
    ) {
        const CLASSES: [&str; 3] = ["Country", "City", "Thing"];
        let mut kg = KnowledgeGraph::new();
        let mut ids = Vec::new();
        for (i, (word, class, literals, alias, link_prev)) in spec.iter().enumerate() {
            let name = format!("{word} {i}");
            let id = kg.add_entity(name.clone(), CLASSES[class % CLASSES.len()]);
            for (j, v) in literals.iter().enumerate() {
                kg.set_literal(id, &format!("p{j}"), v.clone());
            }
            if *alias {
                kg.add_alias(id, format!("aka {name}"));
            }
            if *link_prev && i > 0 {
                kg.set_property(id, "knows", PropertyValue::Entity(ids[i - 1]));
            }
            ids.push(id);
        }

        let mut buf = Vec::new();
        write_kg(&kg, &mut buf).expect("in-memory write cannot fail");
        let back = read_kg(buf.as_slice()).expect("own output must parse");

        prop_assert_eq!(back.n_entities(), kg.n_entities());
        prop_assert_eq!(back.n_triples(), kg.n_triples());

        // Match entities across the two graphs by canonical name.
        let by_name: std::collections::HashMap<String, _> = back
            .entity_ids()
            .map(|id| (back.entity(id).name.clone(), id))
            .collect();
        for &id in &ids {
            let orig = kg.entity(id);
            let &new_id = by_name.get(&orig.name).expect("entity survives");
            let new = back.entity(new_id);
            prop_assert_eq!(&new.class, &orig.class);
            prop_assert_eq!(&new.aliases, &orig.aliases);
            for (pid, value) in kg.properties_of(id) {
                let pname = kg.prop_name(*pid);
                let new_value = back.property(new_id, pname).expect("property survives");
                match (value, new_value) {
                    (PropertyValue::Literal(a), PropertyValue::Literal(b)) => {
                        prop_assert_eq!(a, b, "property {}", pname);
                    }
                    (PropertyValue::Entity(a), PropertyValue::Entity(b)) => {
                        prop_assert_eq!(&kg.entity(*a).name, &back.entity(*b).name);
                    }
                    (a, b) => prop_assert!(false, "variant changed: {a:?} -> {b:?}"),
                }
            }
        }
    }
}
