//! Property extraction: building the universal relation of entity
//! attributes (Section 3.1 of the paper).
//!
//! Given per-row entity links, extraction walks each distinct entity's
//! properties up to a configurable number of hops, flattens everything into
//! attribute names (`leader.age`, `ethnicGroup.avg(population)`), and
//! materializes one row per entity with nulls for missing values — the
//! universal relation. Expansion back to table rows is a cheap gather, so
//! large tables never materialize the full rows × attributes matrix unless
//! asked to.

use std::collections::{BTreeMap, HashMap};

use nexus_table::{Column, DataType, Table, Value};

use crate::graph::{EntityId, KnowledgeGraph, PropertyValue};

/// Aggregation applied to one-to-many links (the paper supports any
/// user-defined function; these are the built-ins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneToManyAgg {
    /// Arithmetic mean of member values.
    Mean,
    /// Sum of member values.
    Sum,
    /// Maximum member value.
    Max,
    /// Minimum member value.
    Min,
    /// The first member value.
    First,
}

impl OneToManyAgg {
    fn label(&self) -> &'static str {
        match self {
            OneToManyAgg::Mean => "avg",
            OneToManyAgg::Sum => "sum",
            OneToManyAgg::Max => "max",
            OneToManyAgg::Min => "min",
            OneToManyAgg::First => "first",
        }
    }

    fn apply(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        Some(match self {
            OneToManyAgg::Mean => values.iter().sum::<f64>() / values.len() as f64,
            OneToManyAgg::Sum => values.iter().sum(),
            OneToManyAgg::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            OneToManyAgg::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            OneToManyAgg::First => values[0],
        })
    }
}

/// Options controlling extraction.
#[derive(Debug, Clone, Copy)]
pub struct ExtractOptions {
    /// Number of hops to follow from the seed entities (1 = direct
    /// properties only).
    pub hops: usize,
    /// Aggregation for numeric properties reached through one-to-many links.
    pub one_to_many: OneToManyAgg,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            hops: 1,
            one_to_many: OneToManyAgg::Mean,
        }
    }
}

/// The universal relation of extracted attributes: one row per distinct
/// linked entity, one column per extracted attribute, nulls where missing.
#[derive(Debug)]
pub struct EntityAttributes {
    /// Distinct entities, in first-appearance order of the link vector.
    pub entity_ids: Vec<EntityId>,
    /// Entity id → row in [`EntityAttributes::table`].
    pub index_of: HashMap<EntityId, usize>,
    /// The universal relation (one row per entity).
    pub table: Table,
}

impl EntityAttributes {
    /// Names of the extracted attributes.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.table.column_names()
    }

    /// Expands one entity-level attribute to table rows via the link vector:
    /// row `i` takes the attribute value of `links[i]`, null when unlinked.
    pub fn expand_to_rows(
        &self,
        links: &[Option<EntityId>],
        attr: &str,
    ) -> nexus_table::Result<Column> {
        let col = self.table.column(attr)?;
        let values: Vec<Value> = links
            .iter()
            .map(|l| match l.and_then(|id| self.index_of.get(&id)) {
                Some(&row) => col.value(row),
                None => Value::Null,
            })
            .collect();
        Column::from_values(col.dtype(), &values)
    }

    /// Expands every attribute to table rows (memory-heavy on large tables;
    /// prefer per-attribute [`EntityAttributes::expand_to_rows`]).
    pub fn expand_all(&self, links: &[Option<EntityId>]) -> nexus_table::Result<Table> {
        let mut cols = Vec::with_capacity(self.table.n_cols());
        for name in self.table.column_names() {
            cols.push((name.to_string(), self.expand_to_rows(links, name)?));
        }
        Table::new(cols)
    }
}

/// Extracts attributes for the distinct entities of `links` from `kg`.
pub fn extract(
    kg: &KnowledgeGraph,
    links: &[Option<EntityId>],
    options: &ExtractOptions,
) -> EntityAttributes {
    // Distinct entities in first-appearance order.
    let mut entity_ids = Vec::new();
    let mut index_of: HashMap<EntityId, usize> = HashMap::new();
    for l in links.iter().flatten() {
        if !index_of.contains_key(l) {
            index_of.insert(*l, entity_ids.len());
            entity_ids.push(*l);
        }
    }

    // Flatten each entity's reachable properties.
    let mut per_entity: Vec<BTreeMap<String, Value>> = Vec::with_capacity(entity_ids.len());
    for &id in &entity_ids {
        let mut out = BTreeMap::new();
        collect(kg, id, "", options.hops, options, &mut out);
        per_entity.push(out);
    }

    // Universal relation: union of attribute names (sorted for determinism).
    let mut names: Vec<String> = Vec::new();
    {
        let mut seen = std::collections::BTreeSet::new();
        for m in &per_entity {
            for k in m.keys() {
                seen.insert(k.clone());
            }
        }
        names.extend(seen);
    }

    let mut columns: Vec<(String, Column)> = Vec::with_capacity(names.len());
    for name in &names {
        let values: Vec<Value> = per_entity
            .iter()
            .map(|m| m.get(name).cloned().unwrap_or(Value::Null))
            .collect();
        columns.push((name.clone(), build_column(&values)));
    }

    EntityAttributes {
        entity_ids,
        index_of,
        table: Table::new(columns).expect("extracted columns share one length"),
    }
}

/// Recursively collects flattened attributes of `id` into `out`.
fn collect(
    kg: &KnowledgeGraph,
    id: EntityId,
    prefix: &str,
    hops_left: usize,
    options: &ExtractOptions,
    out: &mut BTreeMap<String, Value>,
) {
    if hops_left == 0 {
        return;
    }
    for (&pid, value) in kg.properties_of(id) {
        let pname = kg.prop_name(pid);
        let name = if prefix.is_empty() {
            pname.to_string()
        } else {
            format!("{prefix}{pname}")
        };
        match value {
            PropertyValue::Literal(v) => {
                out.insert(name, v.clone());
            }
            PropertyValue::Entity(target) => {
                // The link itself becomes a categorical attribute…
                out.insert(name.clone(), Value::Str(kg.entity(*target).name.clone()));
                // …and its own properties are followed on the next hop.
                if hops_left > 1 {
                    collect(
                        kg,
                        *target,
                        &format!("{name}."),
                        hops_left - 1,
                        options,
                        out,
                    );
                }
            }
            PropertyValue::EntityList(targets) => {
                // List size is always available.
                out.insert(format!("{name}.count"), Value::Int(targets.len() as i64));
                if hops_left > 1 {
                    aggregate_list(kg, targets, &name, options, out);
                }
            }
        }
    }
}

/// Aggregates the numeric properties of list members, e.g.
/// `ethnicGroup.avg(population)`.
fn aggregate_list(
    kg: &KnowledgeGraph,
    targets: &[EntityId],
    name: &str,
    options: &ExtractOptions,
    out: &mut BTreeMap<String, Value>,
) {
    let mut member_props: BTreeMap<PropIdOrd, Vec<f64>> = BTreeMap::new();
    for &t in targets {
        for (&pid, v) in kg.properties_of(t) {
            if let PropertyValue::Literal(lit) = v {
                if let Some(x) = lit.as_f64() {
                    member_props.entry(PropIdOrd(pid)).or_default().push(x);
                }
            }
        }
    }
    for (pid, values) in member_props {
        if let Some(agg) = options.one_to_many.apply(&values) {
            let label = options.one_to_many.label();
            out.insert(
                format!("{name}.{label}({})", kg.prop_name(pid.0)),
                Value::Float(agg),
            );
        }
    }
}

/// Ordered wrapper so member aggregation is deterministic.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct PropIdOrd(crate::graph::PropId);

/// Builds the tightest column for mixed extracted values: Int64 if all
/// integers, Float64 if all numeric, Bool if all boolean, else Utf8 via
/// display conversion.
fn build_column(values: &[Value]) -> Column {
    let mut all_int = true;
    let mut all_num = true;
    let mut all_bool = true;
    let mut any = false;
    for v in values {
        match v {
            Value::Null => {}
            Value::Int(_) => {
                any = true;
                all_bool = false;
            }
            Value::Float(_) => {
                any = true;
                all_int = false;
                all_bool = false;
            }
            Value::Bool(_) => {
                any = true;
                all_int = false;
                all_num = false;
            }
            Value::Str(_) => {
                any = true;
                all_int = false;
                all_num = false;
                all_bool = false;
            }
        }
    }
    if !any {
        return Column::from_opt_strs(&vec![None::<&str>; values.len()]);
    }
    if all_int {
        Column::from_values(DataType::Int64, values).expect("all ints")
    } else if all_num {
        Column::from_values(DataType::Float64, values).expect("all numeric")
    } else if all_bool {
        Column::from_values(DataType::Bool, values).expect("all bools")
    } else {
        let strs: Vec<Option<String>> = values
            .iter()
            .map(|v| match v {
                Value::Null => None,
                other => Some(other.to_string()),
            })
            .collect();
        Column::from_opt_strs(&strs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// us: hdi, gdp, leader(biden{age}), ethnicGroup->[g1{population},g2{population}]
    /// ru: hdi only
    fn toy() -> (KnowledgeGraph, EntityId, EntityId) {
        let mut kg = KnowledgeGraph::new();
        let us = kg.add_entity("United States", "Country");
        let ru = kg.add_entity("Russia", "Country");
        let biden = kg.add_entity("Joe Biden", "Person");
        let g1 = kg.add_entity("Group A", "EthnicGroup");
        let g2 = kg.add_entity("Group B", "EthnicGroup");
        kg.set_literal(us, "hdi", 0.921);
        kg.set_literal(us, "gdp", 21.0);
        kg.set_literal(ru, "hdi", 0.822);
        kg.set_property(us, "leader", PropertyValue::Entity(biden));
        kg.set_literal(biden, "age", 81i64);
        kg.set_property(us, "ethnicGroup", PropertyValue::EntityList(vec![g1, g2]));
        kg.set_literal(g1, "population", 100.0);
        kg.set_literal(g2, "population", 300.0);
        (kg, us, ru)
    }

    #[test]
    fn one_hop_extraction() {
        let (kg, us, ru) = toy();
        let links = vec![Some(us), Some(ru), Some(us), None];
        let ea = extract(&kg, &links, &ExtractOptions::default());
        assert_eq!(ea.entity_ids, vec![us, ru]);
        assert_eq!(ea.table.n_rows(), 2);
        let names = ea.attribute_names();
        assert!(names.contains(&"hdi"));
        assert!(names.contains(&"gdp"));
        assert!(names.contains(&"leader"));
        assert!(names.contains(&"ethnicGroup.count"));
        // 1 hop: no leader.age, no member aggregation.
        assert!(!names.iter().any(|n| n.contains("leader.age")));
        assert!(!names.iter().any(|n| n.contains("avg")));
        // Universal relation: ru has null gdp.
        assert_eq!(ea.table.value(1, "gdp").unwrap(), Value::Null);
        assert_eq!(
            ea.table.value(0, "leader").unwrap(),
            Value::Str("Joe Biden".into())
        );
    }

    #[test]
    fn two_hop_extraction_follows_links_and_aggregates() {
        let (kg, us, ru) = toy();
        let links = vec![Some(us), Some(ru)];
        let ea = extract(
            &kg,
            &links,
            &ExtractOptions {
                hops: 2,
                one_to_many: OneToManyAgg::Mean,
            },
        );
        let names = ea.attribute_names();
        assert!(names.contains(&"leader.age"), "{names:?}");
        assert!(names.contains(&"ethnicGroup.avg(population)"), "{names:?}");
        assert_eq!(ea.table.value(0, "leader.age").unwrap(), Value::Int(81));
        assert_eq!(
            ea.table.value(0, "ethnicGroup.avg(population)").unwrap(),
            Value::Float(200.0)
        );
        assert_eq!(ea.table.value(1, "leader.age").unwrap(), Value::Null);
    }

    #[test]
    fn one_to_many_aggregators() {
        assert_eq!(OneToManyAgg::Sum.apply(&[1.0, 2.0]), Some(3.0));
        assert_eq!(OneToManyAgg::Max.apply(&[1.0, 2.0]), Some(2.0));
        assert_eq!(OneToManyAgg::Min.apply(&[1.0, 2.0]), Some(1.0));
        assert_eq!(OneToManyAgg::First.apply(&[5.0, 2.0]), Some(5.0));
        assert_eq!(OneToManyAgg::Mean.apply(&[]), None);
    }

    #[test]
    fn expand_to_rows_roundtrip() {
        let (kg, us, ru) = toy();
        let links = vec![Some(us), Some(ru), None, Some(us)];
        let ea = extract(&kg, &links, &ExtractOptions::default());
        let col = ea.expand_to_rows(&links, "hdi").unwrap();
        assert_eq!(col.len(), 4);
        assert_eq!(col.f64_at(0), Some(0.921));
        assert_eq!(col.f64_at(1), Some(0.822));
        assert!(col.is_null(2));
        assert_eq!(col.f64_at(3), Some(0.921));

        let t = ea.expand_all(&links).unwrap();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), ea.table.n_cols());
    }

    #[test]
    fn empty_links_extract_empty() {
        let (kg, _, _) = toy();
        let ea = extract(&kg, &[None, None], &ExtractOptions::default());
        assert_eq!(ea.table.n_rows(), 0);
        assert_eq!(ea.entity_ids.len(), 0);
    }

    #[test]
    fn column_type_inference() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(build_column(&vals).dtype(), DataType::Int64);
        let vals = vec![Value::Int(1), Value::Float(2.5)];
        assert_eq!(build_column(&vals).dtype(), DataType::Float64);
        let vals = vec![Value::Bool(true), Value::Null];
        assert_eq!(build_column(&vals).dtype(), DataType::Bool);
        let vals = vec![Value::Str("x".into()), Value::Int(1)];
        assert_eq!(build_column(&vals).dtype(), DataType::Utf8);
        let vals = vec![Value::Null, Value::Null];
        let c = build_column(&vals);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn self_referencing_entities_terminate() {
        // a → b → a cycle plus a self-loop: extraction is bounded by hops.
        let mut kg = KnowledgeGraph::new();
        let a = kg.add_entity("A", "Thing");
        let b = kg.add_entity("B", "Thing");
        kg.set_property(a, "peer", PropertyValue::Entity(b));
        kg.set_property(b, "peer", PropertyValue::Entity(a));
        kg.set_property(a, "me", PropertyValue::Entity(a));
        kg.set_literal(a, "x", 1.0);
        kg.set_literal(b, "x", 2.0);
        let ea = extract(
            &kg,
            &[Some(a)],
            &ExtractOptions {
                hops: 3,
                one_to_many: OneToManyAgg::Mean,
            },
        );
        let names = ea.attribute_names();
        // Flattened chains exist up to depth 3 and no further.
        assert!(names.contains(&"peer.peer.x"), "{names:?}");
        assert!(
            !names.iter().any(|n| n.matches("peer.").count() > 2),
            "{names:?}"
        );
        assert_eq!(ea.table.value(0, "peer.peer.x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn three_hops_no_new_attributes_on_toy() {
        // The toy graph is exhausted at 2 hops; 3 hops must not add noise.
        let (kg, us, ru) = toy();
        let links = vec![Some(us), Some(ru)];
        let two = extract(
            &kg,
            &links,
            &ExtractOptions {
                hops: 2,
                one_to_many: OneToManyAgg::Mean,
            },
        );
        let three = extract(
            &kg,
            &links,
            &ExtractOptions {
                hops: 3,
                one_to_many: OneToManyAgg::Mean,
            },
        );
        assert_eq!(two.table.n_cols(), three.table.n_cols());
    }
}
