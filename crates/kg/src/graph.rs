//! An in-memory property graph modelled after DBpedia-style knowledge
//! graphs: entities with names and aliases, and properties whose values are
//! literals, links to other entities, or one-to-many entity lists.

use std::collections::HashMap;

use nexus_table::Value;

/// Identifier of an entity inside one [`KnowledgeGraph`].
pub type EntityId = u32;

/// Identifier of a property name inside one [`KnowledgeGraph`].
pub type PropId = u32;

/// The value of an entity property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// A literal scalar (number, string, boolean).
    Literal(Value),
    /// A link to a single other entity.
    Entity(EntityId),
    /// A one-to-many link (e.g. `ethnicGroup` of a country).
    EntityList(Vec<EntityId>),
}

/// An entity with its canonical name and alternative surface forms.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Canonical name, e.g. `"Russia"`.
    pub name: String,
    /// Alternative names, e.g. `"Russian Federation"`.
    pub aliases: Vec<String>,
    /// Entity class, e.g. `"Country"` (DBpedia `rdf:type`-style).
    pub class: String,
}

/// An in-memory knowledge graph.
///
/// Entities carry properties; property names are interned. Lookup by
/// (possibly ambiguous) surface form is handled by the NED module
/// ([`crate::ned`]), which consumes the name index built here.
#[derive(Debug, Default)]
pub struct KnowledgeGraph {
    entities: Vec<Entity>,
    /// Per-entity property map.
    properties: Vec<HashMap<PropId, PropertyValue>>,
    prop_names: Vec<String>,
    prop_ids: HashMap<String, PropId>,
}

impl KnowledgeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        KnowledgeGraph::default()
    }

    /// Adds an entity and returns its id.
    pub fn add_entity(&mut self, name: impl Into<String>, class: impl Into<String>) -> EntityId {
        let id = self.entities.len() as EntityId;
        self.entities.push(Entity {
            name: name.into(),
            aliases: Vec::new(),
            class: class.into(),
        });
        self.properties.push(HashMap::new());
        id
    }

    /// Adds an alias (alternative surface form) to an entity.
    pub fn add_alias(&mut self, id: EntityId, alias: impl Into<String>) {
        self.entities[id as usize].aliases.push(alias.into());
    }

    /// Replaces an entity's class.
    pub fn set_entity_class(&mut self, id: EntityId, class: impl Into<String>) {
        self.entities[id as usize].class = class.into();
    }

    /// Interns a property name.
    pub fn prop_id(&mut self, name: &str) -> PropId {
        if let Some(&id) = self.prop_ids.get(name) {
            return id;
        }
        let id = self.prop_names.len() as PropId;
        self.prop_names.push(name.to_string());
        self.prop_ids.insert(name.to_string(), id);
        id
    }

    /// Looks up an interned property name without creating it.
    pub fn lookup_prop(&self, name: &str) -> Option<PropId> {
        self.prop_ids.get(name).copied()
    }

    /// The name of an interned property.
    pub fn prop_name(&self, id: PropId) -> &str {
        &self.prop_names[id as usize]
    }

    /// Sets a property on an entity (overwrites any previous value).
    pub fn set_property(&mut self, id: EntityId, prop: &str, value: PropertyValue) {
        let pid = self.prop_id(prop);
        self.properties[id as usize].insert(pid, value);
    }

    /// Convenience: sets a literal property.
    pub fn set_literal(&mut self, id: EntityId, prop: &str, value: impl Into<Value>) {
        self.set_property(id, prop, PropertyValue::Literal(value.into()));
    }

    /// The property map of an entity.
    pub fn properties_of(&self, id: EntityId) -> &HashMap<PropId, PropertyValue> {
        &self.properties[id as usize]
    }

    /// A specific property of an entity.
    pub fn property(&self, id: EntityId, prop: &str) -> Option<&PropertyValue> {
        let pid = self.lookup_prop(prop)?;
        self.properties[id as usize].get(&pid)
    }

    /// The entity with the given id.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id as usize]
    }

    /// Number of entities.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct property names.
    pub fn n_properties(&self) -> usize {
        self.prop_names.len()
    }

    /// Total number of (entity, property) pairs — the triple count.
    pub fn n_triples(&self) -> usize {
        self.properties.iter().map(|m| m.len()).sum()
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entities.len() as EntityId).map(|i| i as EntityId)
    }

    /// All entities of a class.
    pub fn entities_of_class(&self, class: &str) -> Vec<EntityId> {
        self.entity_ids()
            .filter(|&id| self.entities[id as usize].class == class)
            .collect()
    }

    /// Content fingerprint of the graph: entities (names, aliases, classes)
    /// and every property triple, hashed in a canonical order so the digest
    /// is independent of property-map iteration order. Used by the resident
    /// explanation server as the knowledge-source half of its cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = nexus_table::Fnv64::new();
        h.write_u64(self.entities.len() as u64);
        for (entity, props) in self.entities.iter().zip(&self.properties) {
            h.write_str(&entity.name);
            h.write_u64(entity.aliases.len() as u64);
            for alias in &entity.aliases {
                h.write_str(alias);
            }
            h.write_str(&entity.class);
            // HashMap iteration order is unstable: sort triples by PropId.
            let mut pids: Vec<PropId> = props.keys().copied().collect();
            pids.sort_unstable();
            h.write_u64(pids.len() as u64);
            for pid in pids {
                h.write_str(&self.prop_names[pid as usize]);
                match &props[&pid] {
                    PropertyValue::Literal(v) => {
                        h.write_u8(1);
                        match v {
                            Value::Null => h.write_u8(0),
                            Value::Int(x) => {
                                h.write_u8(1);
                                h.write_i64(*x);
                            }
                            Value::Float(x) => {
                                h.write_u8(2);
                                h.write_f64(*x);
                            }
                            Value::Str(s) => {
                                h.write_u8(3);
                                h.write_str(s);
                            }
                            Value::Bool(b) => {
                                h.write_u8(4);
                                h.write_bool(*b);
                            }
                        }
                    }
                    PropertyValue::Entity(id) => {
                        h.write_u8(2);
                        h.write_u32(*id);
                    }
                    PropertyValue::EntityList(ids) => {
                        h.write_u8(3);
                        h.write_u64(ids.len() as u64);
                        for id in ids {
                            h.write_u32(*id);
                        }
                    }
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let us = kg.add_entity("United States", "Country");
        let ru = kg.add_entity("Russia", "Country");
        kg.add_alias(ru, "Russian Federation");
        let biden = kg.add_entity("Joe Biden", "Person");
        kg.set_literal(us, "hdi", 0.921);
        kg.set_literal(us, "gdp", 21_000.0);
        kg.set_literal(ru, "hdi", 0.822);
        kg.set_property(us, "leader", PropertyValue::Entity(biden));
        kg.set_literal(biden, "age", 81i64);
        kg
    }

    #[test]
    fn entities_and_properties() {
        let kg = toy();
        assert_eq!(kg.n_entities(), 3);
        assert_eq!(kg.n_properties(), 4); // hdi, gdp, leader, age
        assert_eq!(kg.n_triples(), 5);
        assert_eq!(kg.entity(0).name, "United States");
        assert_eq!(kg.entity(1).aliases, vec!["Russian Federation"]);
        assert_eq!(
            kg.property(0, "hdi"),
            Some(&PropertyValue::Literal(Value::Float(0.921)))
        );
        assert_eq!(kg.property(1, "gdp"), None);
        assert_eq!(kg.property(0, "nonexistent"), None);
    }

    #[test]
    fn property_interning_is_stable() {
        let mut kg = toy();
        let a = kg.prop_id("hdi");
        let b = kg.prop_id("hdi");
        assert_eq!(a, b);
        assert_eq!(kg.prop_name(a), "hdi");
        assert_eq!(kg.lookup_prop("hdi"), Some(a));
        assert_eq!(kg.lookup_prop("zzz"), None);
    }

    #[test]
    fn entity_links() {
        let kg = toy();
        match kg.property(0, "leader") {
            Some(PropertyValue::Entity(id)) => {
                assert_eq!(kg.entity(*id).name, "Joe Biden");
                assert_eq!(
                    kg.property(*id, "age"),
                    Some(&PropertyValue::Literal(Value::Int(81)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_queries() {
        let kg = toy();
        assert_eq!(kg.entities_of_class("Country"), vec![0, 1]);
        assert_eq!(kg.entities_of_class("Person"), vec![2]);
        assert!(kg.entities_of_class("City").is_empty());
    }

    #[test]
    fn overwrite_property() {
        let mut kg = toy();
        kg.set_literal(0, "hdi", 0.5);
        assert_eq!(
            kg.property(0, "hdi"),
            Some(&PropertyValue::Literal(Value::Float(0.5)))
        );
        assert_eq!(kg.n_triples(), 5); // overwrite, not insert
    }

    #[test]
    fn fingerprint_is_content_stable() {
        // Rebuilt graphs with identical content hash identically even
        // though their internal HashMaps were populated independently.
        assert_eq!(toy().fingerprint(), toy().fingerprint());
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let base = toy().fingerprint();
        let mut kg = toy();
        kg.set_literal(0, "hdi", 0.922);
        assert_ne!(base, kg.fingerprint(), "literal change");
        let mut kg = toy();
        kg.add_alias(0, "USA");
        assert_ne!(base, kg.fingerprint(), "alias change");
        let mut kg = toy();
        kg.add_entity("France", "Country");
        assert_ne!(base, kg.fingerprint(), "new entity");
    }
}
