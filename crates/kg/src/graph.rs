//! An in-memory property graph modelled after DBpedia-style knowledge
//! graphs: entities with names and aliases, and properties whose values are
//! literals, links to other entities, or one-to-many entity lists.

use std::collections::HashMap;

use nexus_table::Value;

/// Identifier of an entity inside one [`KnowledgeGraph`].
pub type EntityId = u32;

/// Identifier of a property name inside one [`KnowledgeGraph`].
pub type PropId = u32;

/// The value of an entity property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// A literal scalar (number, string, boolean).
    Literal(Value),
    /// A link to a single other entity.
    Entity(EntityId),
    /// A one-to-many link (e.g. `ethnicGroup` of a country).
    EntityList(Vec<EntityId>),
}

/// An entity with its canonical name and alternative surface forms.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Canonical name, e.g. `"Russia"`.
    pub name: String,
    /// Alternative names, e.g. `"Russian Federation"`.
    pub aliases: Vec<String>,
    /// Entity class, e.g. `"Country"` (DBpedia `rdf:type`-style).
    pub class: String,
}

/// An in-memory knowledge graph.
///
/// Entities carry properties; property names are interned. Lookup by
/// (possibly ambiguous) surface form is handled by the NED module
/// ([`crate::ned`]), which consumes the name index built here.
#[derive(Debug, Default)]
pub struct KnowledgeGraph {
    entities: Vec<Entity>,
    /// Per-entity property map.
    properties: Vec<HashMap<PropId, PropertyValue>>,
    prop_names: Vec<String>,
    prop_ids: HashMap<String, PropId>,
}

impl KnowledgeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        KnowledgeGraph::default()
    }

    /// Adds an entity and returns its id.
    pub fn add_entity(&mut self, name: impl Into<String>, class: impl Into<String>) -> EntityId {
        let id = self.entities.len() as EntityId;
        self.entities.push(Entity {
            name: name.into(),
            aliases: Vec::new(),
            class: class.into(),
        });
        self.properties.push(HashMap::new());
        id
    }

    /// Adds an alias (alternative surface form) to an entity.
    pub fn add_alias(&mut self, id: EntityId, alias: impl Into<String>) {
        self.entities[id as usize].aliases.push(alias.into());
    }

    /// Replaces an entity's class.
    pub fn set_entity_class(&mut self, id: EntityId, class: impl Into<String>) {
        self.entities[id as usize].class = class.into();
    }

    /// Interns a property name.
    pub fn prop_id(&mut self, name: &str) -> PropId {
        if let Some(&id) = self.prop_ids.get(name) {
            return id;
        }
        let id = self.prop_names.len() as PropId;
        self.prop_names.push(name.to_string());
        self.prop_ids.insert(name.to_string(), id);
        id
    }

    /// Looks up an interned property name without creating it.
    pub fn lookup_prop(&self, name: &str) -> Option<PropId> {
        self.prop_ids.get(name).copied()
    }

    /// The name of an interned property.
    pub fn prop_name(&self, id: PropId) -> &str {
        &self.prop_names[id as usize]
    }

    /// Sets a property on an entity (overwrites any previous value).
    pub fn set_property(&mut self, id: EntityId, prop: &str, value: PropertyValue) {
        let pid = self.prop_id(prop);
        self.properties[id as usize].insert(pid, value);
    }

    /// Convenience: sets a literal property.
    pub fn set_literal(&mut self, id: EntityId, prop: &str, value: impl Into<Value>) {
        self.set_property(id, prop, PropertyValue::Literal(value.into()));
    }

    /// The property map of an entity.
    pub fn properties_of(&self, id: EntityId) -> &HashMap<PropId, PropertyValue> {
        &self.properties[id as usize]
    }

    /// A specific property of an entity.
    pub fn property(&self, id: EntityId, prop: &str) -> Option<&PropertyValue> {
        let pid = self.lookup_prop(prop)?;
        self.properties[id as usize].get(&pid)
    }

    /// The entity with the given id.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id as usize]
    }

    /// Number of entities.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of distinct property names.
    pub fn n_properties(&self) -> usize {
        self.prop_names.len()
    }

    /// Total number of (entity, property) pairs — the triple count.
    pub fn n_triples(&self) -> usize {
        self.properties.iter().map(|m| m.len()).sum()
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entities.len() as EntityId).map(|i| i as EntityId)
    }

    /// All entities of a class.
    pub fn entities_of_class(&self, class: &str) -> Vec<EntityId> {
        self.entity_ids()
            .filter(|&id| self.entities[id as usize].class == class)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let us = kg.add_entity("United States", "Country");
        let ru = kg.add_entity("Russia", "Country");
        kg.add_alias(ru, "Russian Federation");
        let biden = kg.add_entity("Joe Biden", "Person");
        kg.set_literal(us, "hdi", 0.921);
        kg.set_literal(us, "gdp", 21_000.0);
        kg.set_literal(ru, "hdi", 0.822);
        kg.set_property(us, "leader", PropertyValue::Entity(biden));
        kg.set_literal(biden, "age", 81i64);
        kg
    }

    #[test]
    fn entities_and_properties() {
        let kg = toy();
        assert_eq!(kg.n_entities(), 3);
        assert_eq!(kg.n_properties(), 4); // hdi, gdp, leader, age
        assert_eq!(kg.n_triples(), 5);
        assert_eq!(kg.entity(0).name, "United States");
        assert_eq!(kg.entity(1).aliases, vec!["Russian Federation"]);
        assert_eq!(
            kg.property(0, "hdi"),
            Some(&PropertyValue::Literal(Value::Float(0.921)))
        );
        assert_eq!(kg.property(1, "gdp"), None);
        assert_eq!(kg.property(0, "nonexistent"), None);
    }

    #[test]
    fn property_interning_is_stable() {
        let mut kg = toy();
        let a = kg.prop_id("hdi");
        let b = kg.prop_id("hdi");
        assert_eq!(a, b);
        assert_eq!(kg.prop_name(a), "hdi");
        assert_eq!(kg.lookup_prop("hdi"), Some(a));
        assert_eq!(kg.lookup_prop("zzz"), None);
    }

    #[test]
    fn entity_links() {
        let kg = toy();
        match kg.property(0, "leader") {
            Some(PropertyValue::Entity(id)) => {
                assert_eq!(kg.entity(*id).name, "Joe Biden");
                assert_eq!(
                    kg.property(*id, "age"),
                    Some(&PropertyValue::Literal(Value::Int(81)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_queries() {
        let kg = toy();
        assert_eq!(kg.entities_of_class("Country"), vec![0, 1]);
        assert_eq!(kg.entities_of_class("Person"), vec![2]);
        assert!(kg.entities_of_class("City").is_empty());
    }

    #[test]
    fn overwrite_property() {
        let mut kg = toy();
        kg.set_literal(0, "hdi", 0.5);
        assert_eq!(
            kg.property(0, "hdi"),
            Some(&PropertyValue::Literal(Value::Float(0.5)))
        );
        assert_eq!(kg.n_triples(), 5); // overwrite, not insert
    }
}
