//! Named Entity Disambiguation (NED): resolving table values to entities.
//!
//! The paper links non-numeric table values to KG entities with an
//! off-the-shelf linker and reports two realistic failure modes that drive
//! its missing-data machinery:
//!
//! * **surface-form mismatch** — `"Russian Federation"` vs the entity
//!   `"Russia"` (solved here by alias tables and name normalization);
//! * **ambiguity** — `"Ronaldo"` matching two footballers, which the linker
//!   declines to resolve (producing a missing link).
//!
//! This module reproduces both: normalized exact-match over canonical names
//! and aliases, with ambiguous surface forms left unlinked.

use std::collections::HashMap;

use nexus_table::{Column, ColumnData};

use crate::graph::{EntityId, KnowledgeGraph};

/// Normalizes a surface form: lowercase, trimmed, punctuation stripped,
/// whitespace collapsed.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            // Re-filter after lowercasing: e.g. 'İ' lowercases to "i\u{307}"
            // and the bare combining mark is not alphanumeric — keeping it
            // would break idempotency (a second pass would drop it).
            for c in ch.to_lowercase().filter(|c| c.is_alphanumeric()) {
                out.push(c);
                last_space = false;
            }
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Outcome of linking a single surface form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Resolved to exactly one entity.
    Linked(EntityId),
    /// No candidate entity.
    NotFound,
    /// More than one candidate; the linker declines to guess.
    Ambiguous,
}

/// Aggregate linking statistics for a column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Number of rows resolved to an entity.
    pub linked: usize,
    /// Number of rows with no candidate.
    pub not_found: usize,
    /// Number of rows with multiple candidates.
    pub ambiguous: usize,
    /// Number of null rows (nothing to link).
    pub null: usize,
}

impl LinkStats {
    /// Fraction of non-null rows that linked successfully.
    pub fn link_rate(&self) -> f64 {
        let denom = self.linked + self.not_found + self.ambiguous;
        if denom == 0 {
            0.0
        } else {
            self.linked as f64 / denom as f64
        }
    }
}

/// Levenshtein distance with an early-exit bound; `None` when the distance
/// exceeds `max`.
fn bounded_levenshtein(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        let mut row_min = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let v = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(v);
            cur.push(v);
        }
        if row_min > max {
            return None;
        }
        prev = cur;
    }
    let d = prev[b.len()];
    (d <= max).then_some(d)
}

/// An entity linker over one knowledge graph.
///
/// Construction builds a normalized-name index (canonical names + aliases);
/// linking is then O(1) per distinct surface form.
#[derive(Debug)]
pub struct EntityLinker {
    index: HashMap<String, Vec<EntityId>>,
}

impl EntityLinker {
    /// Builds the linker index from a graph.
    pub fn new(kg: &KnowledgeGraph) -> Self {
        let mut index: HashMap<String, Vec<EntityId>> = HashMap::new();
        for id in kg.entity_ids() {
            let e = kg.entity(id);
            let mut push = |name: &str| {
                let key = normalize(name);
                if key.is_empty() {
                    return;
                }
                let v = index.entry(key).or_default();
                if !v.contains(&id) {
                    v.push(id);
                }
            };
            push(&e.name);
            for a in &e.aliases {
                push(a);
            }
        }
        EntityLinker { index }
    }

    /// Links one surface form.
    pub fn link(&self, surface: &str) -> LinkOutcome {
        match self.index.get(&normalize(surface)) {
            None => LinkOutcome::NotFound,
            Some(ids) if ids.len() == 1 => LinkOutcome::Linked(ids[0]),
            Some(_) => LinkOutcome::Ambiguous,
        }
    }

    /// Links one surface form, falling back to fuzzy matching (edit
    /// distance ≤ `max_distance` over normalized forms) when the exact
    /// lookup finds nothing. A fuzzy match is accepted only when exactly
    /// one entity sits at the minimum distance — two equally-near entities
    /// are as ambiguous as a shared alias.
    pub fn link_fuzzy(&self, surface: &str, max_distance: usize) -> LinkOutcome {
        match self.link(surface) {
            LinkOutcome::NotFound => {}
            exact => return exact,
        }
        let needle = normalize(surface);
        if needle.is_empty() {
            return LinkOutcome::NotFound;
        }
        let mut best = usize::MAX;
        let mut hits: Vec<EntityId> = Vec::new();
        for (key, ids) in &self.index {
            // Cheap length bound before the DP.
            if key.len().abs_diff(needle.len()) > max_distance {
                continue;
            }
            let d = bounded_levenshtein(&needle, key, max_distance);
            let Some(d) = d else { continue };
            match d.cmp(&best) {
                std::cmp::Ordering::Less => {
                    best = d;
                    hits = ids.clone();
                }
                std::cmp::Ordering::Equal => hits.extend(ids.iter().copied()),
                std::cmp::Ordering::Greater => {}
            }
        }
        hits.dedup();
        match hits.len() {
            0 => LinkOutcome::NotFound,
            1 => LinkOutcome::Linked(hits[0]),
            _ => LinkOutcome::Ambiguous,
        }
    }

    /// Links every row of a string column, memoizing by dictionary code.
    ///
    /// Returns per-row links (`None` for null / not-found / ambiguous rows)
    /// and aggregate statistics.
    pub fn link_column(&self, col: &Column) -> (Vec<Option<EntityId>>, LinkStats) {
        let mut stats = LinkStats::default();
        match col.data() {
            ColumnData::Utf8(arr) => {
                // Resolve each dictionary entry once.
                let resolved: Vec<LinkOutcome> = arr.dict().iter().map(|s| self.link(s)).collect();
                let mut out = Vec::with_capacity(col.len());
                for i in 0..col.len() {
                    if col.is_null(i) {
                        stats.null += 1;
                        out.push(None);
                        continue;
                    }
                    match resolved[arr.codes()[i] as usize] {
                        LinkOutcome::Linked(id) => {
                            stats.linked += 1;
                            out.push(Some(id));
                        }
                        LinkOutcome::NotFound => {
                            stats.not_found += 1;
                            out.push(None);
                        }
                        LinkOutcome::Ambiguous => {
                            stats.ambiguous += 1;
                            out.push(None);
                        }
                    }
                }
                (out, stats)
            }
            _ => {
                // Non-string columns are not linkable (the paper only links
                // non-numerical values).
                stats.null = col.len();
                (vec![None; col.len()], stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let ru = kg.add_entity("Russia", "Country");
        kg.add_alias(ru, "Russian Federation");
        kg.add_entity("United States", "Country");
        // Two "Ronaldo"s -> ambiguity.
        let r1 = kg.add_entity("Ronaldo Luís Nazário de Lima", "Person");
        kg.add_alias(r1, "Ronaldo");
        let r2 = kg.add_entity("Cristiano Ronaldo", "Person");
        kg.add_alias(r2, "Ronaldo");
        kg
    }

    #[test]
    fn normalize_forms() {
        assert_eq!(normalize("  Russian   Federation "), "russian federation");
        assert_eq!(normalize("U.S.A."), "u s a");
        assert_eq!(normalize("CÔTE-D'IVOIRE"), "côte d ivoire");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("---"), "");
    }

    #[test]
    fn canonical_and_alias_link() {
        let kg = toy();
        let linker = EntityLinker::new(&kg);
        assert_eq!(linker.link("Russia"), LinkOutcome::Linked(0));
        assert_eq!(linker.link("russian federation"), LinkOutcome::Linked(0));
        assert_eq!(linker.link("RUSSIA"), LinkOutcome::Linked(0));
        assert_eq!(linker.link("Atlantis"), LinkOutcome::NotFound);
    }

    #[test]
    fn ambiguity_declines() {
        let kg = toy();
        let linker = EntityLinker::new(&kg);
        assert_eq!(linker.link("Ronaldo"), LinkOutcome::Ambiguous);
        // Full names still resolve uniquely.
        assert!(matches!(
            linker.link("Cristiano Ronaldo"),
            LinkOutcome::Linked(_)
        ));
    }

    #[test]
    fn link_column_stats() {
        let kg = toy();
        let linker = EntityLinker::new(&kg);
        let col = Column::from_opt_strs(&[
            Some("Russia"),
            Some("Russian Federation"),
            Some("Ronaldo"),
            Some("Narnia"),
            None,
        ]);
        let (links, stats) = linker.link_column(&col);
        assert_eq!(links[0], Some(0));
        assert_eq!(links[1], Some(0));
        assert_eq!(links[2], None);
        assert_eq!(links[3], None);
        assert_eq!(links[4], None);
        assert_eq!(
            stats,
            LinkStats {
                linked: 2,
                not_found: 1,
                ambiguous: 1,
                null: 1
            }
        );
        assert!((stats.link_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fuzzy_linking_repairs_typos() {
        let kg = toy();
        let linker = EntityLinker::new(&kg);
        // One typo away from "russia".
        assert_eq!(linker.link_fuzzy("Rusia", 1), LinkOutcome::Linked(0));
        assert_eq!(linker.link_fuzzy("Russai", 2), LinkOutcome::Linked(0));
        // Exact matches short-circuit.
        assert_eq!(linker.link_fuzzy("Russia", 1), LinkOutcome::Linked(0));
        // Too far: still not found.
        assert_eq!(linker.link_fuzzy("Atlantis", 1), LinkOutcome::NotFound);
        // Ambiguity propagates through the fuzzy path too.
        assert_eq!(linker.link_fuzzy("Ronaldo", 1), LinkOutcome::Ambiguous);
    }

    #[test]
    fn bounded_levenshtein_basics() {
        assert_eq!(bounded_levenshtein("abc", "abc", 2), Some(0));
        assert_eq!(bounded_levenshtein("abc", "abd", 2), Some(1));
        assert_eq!(bounded_levenshtein("abc", "b", 2), Some(2));
        assert_eq!(bounded_levenshtein("abc", "xyz", 2), None);
        assert_eq!(bounded_levenshtein("", "ab", 2), Some(2));
    }

    #[test]
    fn numeric_column_unlinkable() {
        let kg = toy();
        let linker = EntityLinker::new(&kg);
        let col = Column::from_i64(vec![1, 2]);
        let (links, stats) = linker.link_column(&col);
        assert!(links.iter().all(|l| l.is_none()));
        assert_eq!(stats.link_rate(), 0.0);
    }
}
