//! Plain-text serialization of knowledge graphs.
//!
//! The format is a tab-separated triple file, one triple per line:
//!
//! ```text
//! # comment
//! @entity <name> <class>
//! @alias  <name> <alias>
//! <subject>\t<property>\t<object>
//! ```
//!
//! Objects are typed by sniffing: `int`, `float`, `true`/`false`, an
//! `@<entity name>` reference (entity link), an `@[a|b|c]` list (one-to-many
//! link), or a bare string. Entities referenced before declaration are
//! created with class `"Thing"`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use nexus_table::Value;

use crate::graph::{EntityId, KnowledgeGraph, PropertyValue};

/// Errors produced by the KG reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KgIoError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for KgIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kg parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for KgIoError {}

/// Reads a knowledge graph from the triple format.
pub fn read_kg<R: Read>(reader: R) -> Result<KnowledgeGraph, KgIoError> {
    let mut kg = KnowledgeGraph::new();
    let mut by_name: HashMap<String, EntityId> = HashMap::new();
    let reader = BufReader::new(reader);
    let mut pending: Vec<(usize, EntityId, String, String)> = Vec::new();

    for (line_no, line) in reader.lines().enumerate() {
        let line_no = line_no + 1;
        let line = line.map_err(|e| KgIoError {
            line: line_no,
            message: e.to_string(),
        })?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "@entity" => {
                if fields.len() != 3 {
                    return Err(err(line_no, "@entity expects <name>\\t<class>"));
                }
                let id = *by_name
                    .entry(fields[1].to_string())
                    .or_insert_with(|| kg.add_entity(fields[1], "Thing"));
                // Update the class (entities may have been force-created).
                let _ = id;
                // Re-adding with correct class: KnowledgeGraph has no class
                // setter; recreate only when the entity was force-created
                // with "Thing".
                if kg.entity(id).class == "Thing" && fields[2] != "Thing" {
                    set_class(&mut kg, id, fields[2]);
                }
            }
            "@alias" => {
                if fields.len() != 3 {
                    return Err(err(line_no, "@alias expects <name>\\t<alias>"));
                }
                let id = resolve(&mut kg, &mut by_name, fields[1]);
                kg.add_alias(id, fields[2]);
            }
            _ => {
                if fields.len() != 3 {
                    return Err(err(
                        line_no,
                        "triple expects <subject>\\t<property>\\t<object>",
                    ));
                }
                let id = resolve(&mut kg, &mut by_name, fields[0]);
                pending.push((line_no, id, fields[1].to_string(), fields[2].to_string()));
            }
        }
    }

    // Second pass: materialize property values (entity refs may point to
    // entities declared later in the file).
    for (line_no, id, prop, object) in pending {
        let value = parse_object(&mut kg, &mut by_name, &object).map_err(|m| err(line_no, &m))?;
        kg.set_property(id, &prop, value);
    }
    Ok(kg)
}

/// Reads a knowledge graph from a file path.
pub fn read_kg_path(path: impl AsRef<Path>) -> Result<KnowledgeGraph, KgIoError> {
    let file = std::fs::File::open(path).map_err(|e| KgIoError {
        line: 0,
        message: e.to_string(),
    })?;
    read_kg(file)
}

/// Writes a knowledge graph in the triple format.
pub fn write_kg<W: Write>(kg: &KnowledgeGraph, writer: W) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(writer);
    for id in kg.entity_ids() {
        let e = kg.entity(id);
        writeln!(w, "@entity\t{}\t{}", e.name, e.class)?;
        for alias in &e.aliases {
            writeln!(w, "@alias\t{}\t{}", e.name, alias)?;
        }
    }
    for id in kg.entity_ids() {
        let name = &kg.entity(id).name;
        // Deterministic property order.
        let mut props: Vec<_> = kg.properties_of(id).iter().collect();
        props.sort_by_key(|(pid, _)| **pid);
        for (&pid, value) in props {
            let obj = match value {
                PropertyValue::Literal(Value::Str(s)) => s.clone(),
                PropertyValue::Literal(v) => v.to_string(),
                PropertyValue::Entity(t) => format!("@{}", kg.entity(*t).name),
                PropertyValue::EntityList(ts) => format!(
                    "@[{}]",
                    ts.iter()
                        .map(|t| kg.entity(*t).name.clone())
                        .collect::<Vec<_>>()
                        .join("|")
                ),
            };
            writeln!(w, "{}\t{}\t{}", name, kg.prop_name(pid), obj)?;
        }
    }
    w.flush()
}

/// Writes a knowledge graph to a file path.
pub fn write_kg_path(kg: &KnowledgeGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_kg(kg, std::fs::File::create(path)?)
}

fn err(line: usize, message: &str) -> KgIoError {
    KgIoError {
        line,
        message: message.to_string(),
    }
}

fn resolve(
    kg: &mut KnowledgeGraph,
    by_name: &mut HashMap<String, EntityId>,
    name: &str,
) -> EntityId {
    *by_name
        .entry(name.to_string())
        .or_insert_with(|| kg.add_entity(name, "Thing"))
}

fn parse_object(
    kg: &mut KnowledgeGraph,
    by_name: &mut HashMap<String, EntityId>,
    object: &str,
) -> Result<PropertyValue, String> {
    if let Some(rest) = object.strip_prefix("@[") {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err("unterminated entity list".into());
        };
        let ids = inner
            .split('|')
            .filter(|s| !s.is_empty())
            .map(|n| resolve(kg, by_name, n))
            .collect();
        return Ok(PropertyValue::EntityList(ids));
    }
    if let Some(name) = object.strip_prefix('@') {
        return Ok(PropertyValue::Entity(resolve(kg, by_name, name)));
    }
    let value = if let Ok(i) = object.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(f) = object.parse::<f64>() {
        Value::Float(f)
    } else if object == "true" || object == "false" {
        Value::Bool(object == "true")
    } else {
        Value::Str(object.to_string())
    };
    Ok(PropertyValue::Literal(value))
}

/// Replaces an entity's class in place.
fn set_class(kg: &mut KnowledgeGraph, id: EntityId, class: &str) {
    kg.set_entity_class(id, class);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let us = kg.add_entity("United States", "Country");
        kg.add_alias(us, "USA");
        let biden = kg.add_entity("Joe Biden", "Person");
        let g1 = kg.add_entity("Group A", "Ethnic");
        let g2 = kg.add_entity("Group B", "Ethnic");
        kg.set_literal(us, "hdi", 0.921);
        kg.set_literal(us, "population", 331_000_000i64);
        kg.set_literal(us, "g7", true);
        kg.set_literal(us, "motto", "e pluribus unum");
        kg.set_property(us, "leader", PropertyValue::Entity(biden));
        kg.set_property(us, "groups", PropertyValue::EntityList(vec![g1, g2]));
        kg.set_literal(biden, "age", 81i64);
        kg
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let kg = toy();
        let mut buf = Vec::new();
        write_kg(&kg, &mut buf).unwrap();
        let kg2 = read_kg(buf.as_slice()).unwrap();
        assert_eq!(kg2.n_entities(), kg.n_entities());
        assert_eq!(kg2.n_triples(), kg.n_triples());
        let linker = crate::ned::EntityLinker::new(&kg2);
        let crate::ned::LinkOutcome::Linked(us) = linker.link("USA") else {
            panic!("alias lost");
        };
        assert_eq!(
            kg2.property(us, "hdi"),
            Some(&PropertyValue::Literal(Value::Float(0.921)))
        );
        assert_eq!(
            kg2.property(us, "population"),
            Some(&PropertyValue::Literal(Value::Int(331_000_000)))
        );
        assert_eq!(
            kg2.property(us, "g7"),
            Some(&PropertyValue::Literal(Value::Bool(true)))
        );
        match kg2.property(us, "leader") {
            Some(PropertyValue::Entity(t)) => assert_eq!(kg2.entity(*t).name, "Joe Biden"),
            other => panic!("unexpected {other:?}"),
        }
        match kg2.property(us, "groups") {
            Some(PropertyValue::EntityList(ts)) => assert_eq!(ts.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(kg2.entity(us).class, "Country");
    }

    #[test]
    fn forward_references_work() {
        let text = "a\tknows\t@b\n@entity\ta\tPerson\n@entity\tb\tPerson\n";
        let kg = read_kg(text.as_bytes()).unwrap();
        assert_eq!(kg.n_entities(), 2);
        let a = kg.entities_of_class("Person");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# hello\n\n@entity\tx\tThing\nx\tv\t1\n";
        let kg = read_kg(text.as_bytes()).unwrap();
        assert_eq!(kg.n_triples(), 1);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let e = read_kg("just-one-field\n".as_bytes()).unwrap_err();
        assert_eq!(e.line, 1);
        let e = read_kg("@entity\tonly-name\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"));
        let e = read_kg("a\tp\t@[unterminated\n".as_bytes()).unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn type_sniffing() {
        let text = "e\ti\t42\ne\tf\t4.5\ne\tb\ttrue\ne\ts\thello world\n";
        let kg = read_kg(text.as_bytes()).unwrap();
        let id = 0;
        assert_eq!(
            kg.property(id, "i"),
            Some(&PropertyValue::Literal(Value::Int(42)))
        );
        assert_eq!(
            kg.property(id, "f"),
            Some(&PropertyValue::Literal(Value::Float(4.5)))
        );
        assert_eq!(
            kg.property(id, "b"),
            Some(&PropertyValue::Literal(Value::Bool(true)))
        );
        assert_eq!(
            kg.property(id, "s"),
            Some(&PropertyValue::Literal(Value::Str("hello world".into())))
        );
    }
}
