//! # nexus-kg
//!
//! Knowledge-graph substrate for the NEXUS system: an in-memory DBpedia-like
//! property graph ([`KnowledgeGraph`]), a named-entity-disambiguation linker
//! ([`EntityLinker`]) with realistic failure modes (alias mismatch,
//! ambiguity), and multi-hop property [`extract()`] walks into the universal
//! relation of candidate confounding attributes (Section 3.1 of the paper).
//!
//! ## Example
//!
//! ```
//! use nexus_kg::{KnowledgeGraph, EntityLinker, extract, ExtractOptions};
//! use nexus_table::Column;
//!
//! let mut kg = KnowledgeGraph::new();
//! let fr = kg.add_entity("France", "Country");
//! kg.set_literal(fr, "hdi", 0.903);
//!
//! let linker = EntityLinker::new(&kg);
//! let col = Column::from_strs(&["France", "France", "Narnia"]);
//! let (links, stats) = linker.link_column(&col);
//! assert_eq!(stats.linked, 2);
//!
//! let attrs = extract(&kg, &links, &ExtractOptions::default());
//! assert_eq!(attrs.attribute_names(), vec!["hdi"]);
//! ```

#![warn(missing_docs)]

pub mod extract;
pub mod graph;
pub mod io;
pub mod ned;

pub use extract::{extract, EntityAttributes, ExtractOptions, OneToManyAgg};
pub use graph::{Entity, EntityId, KnowledgeGraph, PropId, PropertyValue};
pub use io::{read_kg, read_kg_path, write_kg, write_kg_path, KgIoError};
pub use ned::{normalize, EntityLinker, LinkOutcome, LinkStats};
