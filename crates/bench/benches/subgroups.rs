//! Algorithm 2 (top-k unexplained subgroups): the paper reports a 4.4 s
//! average; the lattice traversal should explore only a handful of
//! refinements on explainable data.

use criterion::{criterion_group, criterion_main, Criterion};

use nexus_bench::Scenario;
use nexus_core::{
    mcimr, prune_offline, prune_online, unexplained_subgroups, Engine, SubgroupOptions,
};
use nexus_datagen::{DatasetKind, Scale};

fn bench(c: &mut Criterion) {
    let scenario = Scenario::new(DatasetKind::So, Scale::Small);
    let mut set = scenario.candidates();
    prune_offline(&mut set, &scenario.options);
    let engine = Engine::new(&set);
    prune_online(&mut set, &engine, &scenario.options);
    let result = mcimr(&set, &engine, &scenario.options);
    let exclude: Vec<&str> = vec!["Country", "Salary"];

    let mut group = c.benchmark_group("subgroups_SO");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for tau in [0.1f64, 0.3] {
        group.bench_function(format!("tau_{tau}"), |b| {
            b.iter(|| {
                unexplained_subgroups(
                    &scenario.dataset.table,
                    &set,
                    &result.selected,
                    &exclude,
                    &scenario.options,
                    &SubgroupOptions {
                        tau,
                        ..SubgroupOptions::default()
                    },
                )
                .expect("search runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
