//! Figure 4: MCIMR runtime as a function of the number of candidate
//! attributes, for the No-Pruning / Offline-Pruning / Full variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nexus_bench::Scenario;
use nexus_core::Parallelism;
use nexus_datagen::{DatasetKind, Scale};
use nexus_eval::{timed_query, PruningVariant};

fn bench(c: &mut Criterion) {
    let scenario = Scenario::new(DatasetKind::So, Scale::Small);
    let full = scenario.candidates();
    let total = full.candidates.len();

    let mut group = c.benchmark_group("fig4_candidates_SO");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    // Every (variant, pool-width) cell runs the same query; t1 vs t4 shows
    // the scoring-phase speedup without changing the selected explanation.
    for &n in &[50usize, 150, 300] {
        let n = n.min(total);
        for variant in [
            PruningVariant::None,
            PruningVariant::Offline,
            PruningVariant::Full,
        ] {
            for (tag, parallelism) in [("t1", Parallelism::Serial), ("t4", Parallelism::Fixed(4))] {
                let mut options = scenario.options.clone();
                options.parallelism = parallelism;
                group.bench_with_input(
                    BenchmarkId::new(format!("{}-{tag}", variant.name()), n),
                    &n,
                    |b, &n| {
                        b.iter_batched(
                            || {
                                let mut set = full.clone();
                                let mut rng = StdRng::seed_from_u64(4 + n as u64);
                                set.candidates.shuffle(&mut rng);
                                set.candidates.truncate(n);
                                set
                            },
                            |set| timed_query(set, &options, variant),
                            criterion::BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
