//! Substrate microbenchmarks: the dataframe operations underneath the
//! pipeline (group-by, join, filter, binning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nexus_table::{
    aggregate, bin_codes, group_by, join, AggFunc, BinStrategy, Bitmap, Column, JoinType, Table,
};

fn people(n: usize) -> Table {
    let mut s = 7u64;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as usize
    };
    let countries: Vec<String> = (0..n).map(|_| format!("C{:03}", next() % 200)).collect();
    let salaries: Vec<f64> = (0..n).map(|_| (next() % 100_000) as f64).collect();
    Table::new(vec![
        ("country", Column::from_strs(&countries)),
        ("salary", Column::from_f64(salaries)),
    ])
    .unwrap()
}

fn countries_table() -> Table {
    let names: Vec<String> = (0..200).map(|i| format!("C{i:03}")).collect();
    let gdp: Vec<f64> = (0..200).map(|i| 1000.0 + i as f64).collect();
    Table::new(vec![
        ("country", Column::from_strs(&names)),
        ("gdp", Column::from_f64(gdp)),
    ])
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_ops");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for &n in &[10_000usize, 100_000] {
        let t = people(n);
        let right = countries_table();
        group.bench_with_input(BenchmarkId::new("group_by", n), &t, |b, t| {
            b.iter(|| group_by(t, &["country"]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("aggregate_avg", n), &t, |b, t| {
            b.iter(|| aggregate(t, &["country"], &[(AggFunc::Avg, "salary")]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hash_join", n), &t, |b, t| {
            b.iter(|| join(t, &right, "country", "country", JoinType::Inner).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("filter_half", n), &t, |b, t| {
            let mask: Bitmap = (0..t.n_rows()).map(|i| i % 2 == 0).collect();
            b.iter(|| t.filter(&mask).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("quantile_binning", n), &t, |b, t| {
            let col = t.column("salary").unwrap();
            b.iter(|| bin_codes(col, BinStrategy::Quantile(8)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
