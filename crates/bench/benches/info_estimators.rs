//! Microbenchmarks for the information-theoretic estimators — the inner
//! loop of everything else.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nexus_info::InfoContext;
use nexus_table::Codes;

fn synthetic(n: usize, card: u32, seed: u64) -> Codes {
    let mut s = seed;
    let codes = (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as u32) % card
        })
        .collect();
    Codes {
        codes,
        cardinality: card,
        validity: None,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimators");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let x = synthetic(n, 8, 1);
        let y = synthetic(n, 200, 2);
        let z = synthetic(n, 6, 3);
        let ctx = InfoContext::default();
        group.bench_with_input(BenchmarkId::new("entropy", n), &n, |b, _| {
            b.iter(|| ctx.entropy(&x))
        });
        group.bench_with_input(BenchmarkId::new("mi", n), &n, |b, _| {
            b.iter(|| ctx.mutual_information(&x, &y))
        });
        group.bench_with_input(BenchmarkId::new("cmi", n), &n, |b, _| {
            b.iter(|| ctx.cmi(&x, &y, &[&z]))
        });
        group.bench_with_input(BenchmarkId::new("cmi_mm", n), &n, |b, _| {
            b.iter(|| ctx.cmi_mm(&x, &y, &[&z]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
