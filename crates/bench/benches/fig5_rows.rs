//! Figure 5: MCIMR runtime as a function of the number of table rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nexus_bench::Scenario;
use nexus_core::build_candidates;
use nexus_datagen::{DatasetKind, Scale};
use nexus_eval::{timed_query, PruningVariant};

fn bench(c: &mut Criterion) {
    for kind in [DatasetKind::So, DatasetKind::Forbes] {
        let scenario = Scenario::new(kind, Scale::Small);
        let n = scenario.dataset.table.n_rows();
        let mut group = c.benchmark_group(format!("fig5_rows_{}", scenario.dataset.name));
        group.measurement_time(std::time::Duration::from_secs(4));
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.sample_size(10);
        for frac in [0.25, 0.5, 1.0] {
            let keep = ((n as f64) * frac) as usize;
            let mut rows: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(5);
            rows.shuffle(&mut rng);
            rows.truncate(keep);
            rows.sort_unstable();
            let sub = scenario.dataset.table.gather(&rows);
            group.bench_with_input(BenchmarkId::from_parameter(keep), &sub, |b, sub| {
                b.iter_batched(
                    || {
                        build_candidates(
                            sub,
                            &scenario.dataset.kg,
                            &scenario.dataset.extraction_columns,
                            &scenario.query,
                            &scenario.options,
                        )
                        .expect("candidates build")
                    },
                    |set| timed_query(set, &scenario.options, PruningVariant::Full),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
