//! Figure 6: MCIMR runtime as a function of the explanation-size bound `k`
//! (flat beyond ~3, because the responsibility test stops early).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nexus_bench::Scenario;
use nexus_datagen::{DatasetKind, Scale};
use nexus_eval::{timed_query, PruningVariant};

fn bench(c: &mut Criterion) {
    let scenario = Scenario::new(DatasetKind::So, Scale::Small);
    let mut group = c.benchmark_group("fig6_k_SO");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for k in [1usize, 2, 3, 5, 8] {
        let mut options = scenario.options.clone();
        options.max_explanation_size = k;
        group.bench_with_input(BenchmarkId::from_parameter(k), &options, |b, options| {
            b.iter_batched(
                || scenario.candidates(),
                |set| timed_query(set, options, PruningVariant::Full),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
