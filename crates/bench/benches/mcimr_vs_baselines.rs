//! Selection-time comparison: MCIMR vs every baseline on the same pruned
//! candidate set (the Section 5.1/5.3 scalability story — HypDB/Brute-Force
//! blow up with the pool size; MCIMR stays linear).

use criterion::{criterion_group, criterion_main, Criterion};

use nexus_baselines::{
    BruteForce, CajadeBaseline, ExplainMethod, HypDbBaseline, LinearRegressionBaseline, TopK,
};
use nexus_bench::Scenario;
use nexus_core::{mcimr, prune_offline, prune_online, Engine, Parallelism};
use nexus_datagen::{DatasetKind, Scale};

fn bench(c: &mut Criterion) {
    let scenario = Scenario::new(DatasetKind::Covid, Scale::Small);
    let mut set = scenario.candidates();
    prune_offline(&mut set, &scenario.options);
    let engine = Engine::new(&set);
    prune_online(&mut set, &engine, &scenario.options);

    let mut group = c.benchmark_group("selection_Covid");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    // Candidate scoring at 1 vs 4 pool threads — selections must be
    // identical (index-ordered reduction), only the wall clock moves. The
    // engine is rebuilt every iteration: its per-candidate caches would
    // otherwise absorb the scoring work after the first pass and the bench
    // would time cache hits instead of the parallel region.
    for (label, parallelism) in [
        ("MCIMR/t1", Parallelism::Serial),
        ("MCIMR/t4", Parallelism::Fixed(4)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = Engine::with_parallelism(&set, parallelism);
                mcimr(&set, &engine, &scenario.options)
            })
        });
    }
    let methods: Vec<Box<dyn ExplainMethod>> = vec![
        Box::new(BruteForce {
            threads: 4,
            ..BruteForce::default()
        }),
        Box::new(TopK::default()),
        Box::new(LinearRegressionBaseline::default()),
        Box::new(HypDbBaseline::default()),
        Box::new(CajadeBaseline::default()),
    ];
    for method in methods {
        group.bench_function(method.name(), |b| {
            b.iter(|| method.select(&set, &engine, &scenario.options))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
