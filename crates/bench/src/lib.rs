//! # nexus-bench
//!
//! Shared fixtures for the Criterion benchmark suite. The benches map to
//! the paper's evaluation figures:
//!
//! * `fig4_candidates` — MCIMR runtime vs number of candidate attributes
//!   (No-Pruning / Offline / Full series);
//! * `fig5_rows` — runtime vs table rows;
//! * `fig6_explanation_size` — runtime vs the bound `k`;
//! * `mcimr_vs_baselines` — selection-time comparison against Brute-Force,
//!   Top-K, LR, HypDB, CajaDE (the Section 5.3 scalability story);
//! * `subgroups` — Algorithm 2 (the 4.4 s average the paper reports);
//! * `info_estimators` / `table_ops` — substrate microbenchmarks.
//!
//! Criterion measures wall-clock latency; the absolute numbers depend on
//! the machine, but the *shapes* (near-linear in |𝒜|, flat in rows for
//! group-dense data, flat in k) reproduce the paper's figures.

#![warn(missing_docs)]

use nexus_core::{build_candidates, CandidateSet, NexusOptions};
use nexus_datagen::{load, queries_for, Dataset, DatasetKind, Scale};
use nexus_query::AggregateQuery;

/// A prepared benchmark scenario: dataset + parsed first query + built
/// candidate set.
pub struct Scenario {
    /// The generated dataset.
    pub dataset: Dataset,
    /// The parsed benchmark query (Q1 of the dataset).
    pub query: AggregateQuery,
    /// Pipeline options (with alternative outcomes excluded).
    pub options: NexusOptions,
}

impl Scenario {
    /// Prepares a scenario at the given scale.
    pub fn new(kind: DatasetKind, scale: Scale) -> Scenario {
        let dataset = load(kind, scale);
        let query = queries_for(kind)[0].parsed();
        let options = NexusOptions {
            excluded_columns: nexus_eval::excluded_for(&dataset, &query),
            ..NexusOptions::default()
        };
        Scenario {
            dataset,
            query,
            options,
        }
    }

    /// Builds the (unpruned) candidate set.
    pub fn candidates(&self) -> CandidateSet {
        build_candidates(
            &self.dataset.table,
            &self.dataset.kg,
            &self.dataset.extraction_columns,
            &self.query,
            &self.options,
        )
        .expect("candidates build")
    }
}
