//! Reproducible counting-kernel benchmark for the `explain` hot path.
//!
//! Runs one fixed-seed workload twice — once with the legacy hashed
//! row-scan contingency builds, once with the v2 dense/fused kernels —
//! and emits a `BENCH_<id>.json` comparing **kernel operation counters**
//! (rows scanned, hash ops, dense ops, merge cells, words skipped), never
//! wall-clock: counters are machine-independent, so CI can gate on them
//! without flaking.
//!
//! Workloads: any Table 5 query id (`FL-Q1`, `SO-Q2`, …) runs against the
//! matching paper dataset generator; `SYN-…` ids run against the
//! region-blocked planted-confounder generator
//! ([`nexus_datagen::synth`]), at 10M rows by default, in plain,
//! IPW-weighted (`SYN-W1`), and masked (`SYN-M1`) variants.
//!
//! A third and fourth pass repeat the kernel-mode workload against one
//! shared sub-query [`MemoStore`] — `memo_cold` populates it, `memo_warm`
//! replays the identical request against it — so `BENCH_<id>.json`
//! (schema 3) also reports memo hit/coalescing counters and the warm/cold
//! pool-task ratio of a repeated workload.
//!
//! The harness asserts all passes produce bit-identical explanations
//! (the kernels' core promise) and, with `--check`, exits nonzero unless
//! the acceptance thresholds hold:
//!
//! * ≥ 3x fewer per-row hash operations on the kernel path,
//! * kernel rows scanned ≤ legacy rows scanned,
//! * dense accumulator writes strictly below rows scanned (run
//!   coalescing engaged),
//! * radix merge cells strictly below the v1 full-keyspace merge bill
//!   whenever parallel dense merges happened,
//! * at least one narrow (u8/u16) fused scan,
//! * outputs identical (memo passes included),
//! * pool tasks > 0 when run multi-threaded,
//! * the warm memo pass hits the memo, misses nothing, and sheds real
//!   counted work versus the cold pass (no-worse pool tasks, and
//!   strictly fewer pool tasks or rows scanned).
//!
//! Usage: `bench-explain [--rows N] [--cities N] [--threads N] [--quick]
//! [--query ID] [--out PATH] [--check]`

use std::fmt::Write as _;
use std::time::Instant;

use std::sync::Arc;

use nexus_core::{
    ExplainRequest, Explanation, MemoHandle, MemoStore, Nexus, NexusOptions, Parallelism,
    RunControl,
};
use nexus_datagen::flights::FlightsConfig;
use nexus_datagen::synth::{SynthConfig, SYNTH_WORKLOADS};
use nexus_datagen::{flights, synth, BENCH_QUERIES};
use nexus_info::kernel::{self, KernelMode};
use nexus_info::KernelSnapshot;

struct Args {
    rows: Option<usize>,
    cities: usize,
    threads: usize,
    query: String,
    out: Option<String>,
    quick: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rows: None,
        cities: 320,
        threads: 8,
        query: "FL-Q1".to_string(),
        out: None,
        quick: false,
        check: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rows" => {
                args.rows = Some(value(&mut i)?.parse().map_err(|e| format!("--rows: {e}"))?)
            }
            "--cities" => {
                args.cities = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--cities: {e}"))?
            }
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--query" => args.query = value(&mut i)?,
            "--out" => args.out = Some(value(&mut i)?),
            "--quick" => {
                args.quick = true;
                args.cities = 120;
            }
            "--check" => args.check = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

/// One measured pipeline run.
struct RunResult {
    kernel: KernelSnapshot,
    pool_tasks: u64,
    wall_ms: u128,
    signature: String,
}

/// A byte-exact digest of everything user-visible in an explanation:
/// f64s are rendered as raw bits so "equal" means bit-identical.
fn signature(e: &Explanation) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "initial={:016x};explained={:016x};stopped={};",
        e.initial_cmi.to_bits(),
        e.explained_cmi.to_bits(),
        e.stopped_by_responsibility
    );
    for a in &e.attributes {
        let _ = write!(
            s,
            "name={};resp={:016x};weighted={};",
            a.name,
            a.responsibility.to_bits(),
            a.weighted
        );
    }
    s
}

fn run_mode(
    mode: KernelMode,
    dataset: &nexus_datagen::Dataset,
    sql: &str,
    threads: usize,
    memo: Option<&MemoHandle>,
) -> RunResult {
    kernel::set_mode(mode);
    let query = nexus_query::parse(sql).expect("bench SQL parses");
    let options = NexusOptions::builder()
        .parallelism(if threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Fixed(threads)
        })
        .build()
        .expect("valid options");
    let request = ExplainRequest::new()
        .table(&dataset.table)
        .knowledge_graph(&dataset.kg)
        .extraction_columns(dataset.extraction_columns.clone())
        .query(&query);
    let ctl = match memo {
        Some(handle) => RunControl::none().with_memo(handle),
        None => RunControl::none(),
    };
    let t0 = Instant::now();
    let (explanation, _artifacts) = Nexus::new(options)
        .run_controlled(&request, ctl)
        .expect("pipeline runs");
    let wall_ms = t0.elapsed().as_millis();
    kernel::set_mode(KernelMode::Auto);
    RunResult {
        kernel: explanation.stats.kernel,
        pool_tasks: explanation.stats.pool_tasks,
        wall_ms,
        signature: signature(&explanation),
    }
}

fn json_run(out: &mut String, label: &str, r: &RunResult) {
    let k = &r.kernel;
    let _ = write!(
        out,
        "  \"{label}\": {{\n    \"rows_scanned\": {},\n    \"hash_ops\": {},\n    \"dense_ops\": {},\n    \"dense_builds\": {},\n    \"sparse_builds\": {},\n    \"narrow_scans\": {},\n    \"packed_words_skipped\": {},\n    \"radix_merge_cells\": {},\n    \"full_merge_cells\": {},\n    \"builds_by_width\": {{\"w8\": {}, \"w16\": {}, \"w32\": {}, \"w64\": {}, \"w128\": {}}},\n    \"memo_hits\": {},\n    \"memo_misses\": {},\n    \"memo_inserts\": {},\n    \"memo_coalesced_waits\": {},\n    \"pool_tasks\": {},\n    \"wall_ms\": {}\n  }}",
        k.rows_scanned,
        k.hash_ops,
        k.dense_ops,
        k.dense_builds,
        k.sparse_builds,
        k.narrow_scans,
        k.packed_words_skipped,
        k.radix_merge_cells,
        k.full_merge_cells,
        k.builds_w8,
        k.builds_w16,
        k.builds_w32,
        k.builds_w64,
        k.builds_w128,
        k.memo_hits_total(),
        k.memo_misses_total(),
        k.memo_inserts_total(),
        k.memo_coalesced_waits,
        r.pool_tasks,
        r.wall_ms
    );
}

/// The generated dataset plus the workload descriptor fields that differ
/// between the paper-query and synthetic paths.
struct Workload {
    dataset: nexus_datagen::Dataset,
    sql: &'static str,
    dataset_label: String,
    rows: usize,
    detail: String,
}

fn build_workload(args: &Args) -> Result<Workload, String> {
    if args.query.starts_with("SYN-") {
        let w = SYNTH_WORKLOADS
            .iter()
            .find(|w| w.id == args.query)
            .ok_or_else(|| format!("unknown synthetic workload {}", args.query))?;
        let rows = args
            .rows
            .unwrap_or(if args.quick { 250_000 } else { 10_000_000 });
        let cfg = SynthConfig {
            n_rows: rows,
            bias: w.bias,
            ..SynthConfig::default()
        };
        eprintln!(
            "bench-explain: generating Synth (rows={}, regions={}, segments={}, bias={}, seed={:#x})",
            cfg.n_rows, cfg.n_regions, cfg.n_segments, cfg.bias, cfg.seed
        );
        Ok(Workload {
            dataset: synth::generate(&cfg),
            sql: w.sql,
            dataset_label: "Synth".into(),
            rows,
            detail: format!(
                "\"regions\": {}, \"segments\": {}, \"bias\": {}, \"seed\": {}",
                cfg.n_regions, cfg.n_segments, cfg.bias, cfg.seed
            ),
        })
    } else {
        let bench_query = BENCH_QUERIES
            .iter()
            .find(|q| q.id == args.query)
            .ok_or_else(|| format!("unknown query id {}", args.query))?;
        let rows = args
            .rows
            .unwrap_or(if args.quick { 20_000 } else { 1_000_000 });
        let cfg = FlightsConfig {
            n_rows: rows,
            n_cities: args.cities,
            ..FlightsConfig::default()
        };
        eprintln!(
            "bench-explain: generating Flights (rows={}, cities={}, seed={:#x})",
            cfg.n_rows, cfg.n_cities, cfg.seed
        );
        Ok(Workload {
            dataset: flights::generate(&cfg),
            sql: bench_query.sql,
            dataset_label: "Flights".into(),
            rows,
            detail: format!("\"cities\": {}, \"seed\": {}", cfg.n_cities, cfg.seed),
        })
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-explain: {e}");
            std::process::exit(2);
        }
    };
    let workload = match build_workload(&args) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("bench-explain: {e}");
            std::process::exit(2);
        }
    };
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", args.query));

    eprintln!("bench-explain: legacy pass ({} thread(s))", args.threads);
    let legacy = run_mode(
        KernelMode::Legacy,
        &workload.dataset,
        workload.sql,
        args.threads,
        None,
    );
    eprintln!("bench-explain: kernel pass ({} thread(s))", args.threads);
    let fast = run_mode(
        KernelMode::Auto,
        &workload.dataset,
        workload.sql,
        args.threads,
        None,
    );

    // The repeated-workload passes share one memo store: cold populates
    // it, warm replays the identical request against it. Both must match
    // the un-memoized kernel pass bit for bit.
    let store = Arc::new(MemoStore::new(0));
    let handle = MemoHandle::new(Arc::clone(&store), workload.dataset.table.fingerprint());
    eprintln!("bench-explain: memo cold pass ({} thread(s))", args.threads);
    let memo_cold = run_mode(
        KernelMode::Auto,
        &workload.dataset,
        workload.sql,
        args.threads,
        Some(&handle),
    );
    eprintln!("bench-explain: memo warm pass ({} thread(s))", args.threads);
    let memo_warm = run_mode(
        KernelMode::Auto,
        &workload.dataset,
        workload.sql,
        args.threads,
        Some(&handle),
    );

    // Counter-based, machine-independent comparison. hash_ops can hit 0 on
    // the kernel path (everything dense); clamp so the ratio stays finite.
    let hash_ratio = legacy.kernel.hash_ops as f64 / fast.kernel.hash_ops.max(1) as f64;
    let dense_ops_per_row = fast.kernel.dense_ops as f64 / fast.kernel.rows_scanned.max(1) as f64;
    let merge_ratio =
        fast.kernel.full_merge_cells as f64 / fast.kernel.radix_merge_cells.max(1) as f64;
    let outputs_identical = legacy.signature == fast.signature;
    let rows_not_worse = fast.kernel.rows_scanned <= legacy.kernel.rows_scanned;
    let pool_engaged = args.threads <= 1 || fast.pool_tasks > 0;
    let hash_ratio_ok = hash_ratio >= 3.0;
    // Run coalescing: dense accumulator writes strictly undercut rows.
    let dense_scan_improved = fast.kernel.dense_ops < fast.kernel.rows_scanned;
    // Whenever parallel dense merges happened, the radix bill must
    // strictly undercut the v1 full-keyspace-per-chunk bill.
    let merge_improved = fast.kernel.full_merge_cells == 0
        || fast.kernel.radix_merge_cells < fast.kernel.full_merge_cells;
    let narrow_engaged = fast.kernel.narrow_scans > 0;

    // Repeated-workload memo gates. All counters are per-run deltas, so
    // they are exact even though the process counters are global.
    let warm_lookups = memo_warm.kernel.memo_hits_total() + memo_warm.kernel.memo_misses_total();
    let memo_hit_rate = memo_warm.kernel.memo_hits_total() as f64 / warm_lookups.max(1) as f64;
    let memo_pool_ratio = memo_warm.pool_tasks as f64 / memo_cold.pool_tasks.max(1) as f64;
    let memo_engaged = memo_warm.kernel.memo_hits_total() > 0
        && memo_warm.kernel.memo_misses_total() == 0
        && memo_cold.kernel.memo_inserts_total() > 0;
    let memo_outputs_identical =
        memo_cold.signature == fast.signature && memo_warm.signature == fast.signature;
    // Memo hits must shed real counted work. Where the reuse shows up
    // depends on scale: large builds are row-partitioned onto the pool
    // (fewer pool tasks), small ones are built inline (fewer rows
    // scanned) — so require no-worse pool tasks plus a strict reduction
    // in at least one of the two.
    let memo_work_reduced = memo_warm.pool_tasks <= memo_cold.pool_tasks
        && (memo_warm.pool_tasks < memo_cold.pool_tasks
            || memo_warm.kernel.rows_scanned < memo_cold.kernel.rows_scanned);

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"schema_version\": 3,\n  \"bench\": \"explain\",\n  \"workload\": {{\n    \"dataset\": \"{}\",\n    \"rows\": {},\n    {},\n    \"query_id\": \"{}\",\n    \"sql\": \"{}\",\n    \"threads\": {}\n  }},\n",
        workload.dataset_label, workload.rows, workload.detail, args.query, workload.sql, args.threads
    );
    json_run(&mut out, "legacy", &legacy);
    out.push_str(",\n");
    json_run(&mut out, "kernel", &fast);
    out.push_str(",\n");
    json_run(&mut out, "memo_cold", &memo_cold);
    out.push_str(",\n");
    json_run(&mut out, "memo_warm", &memo_warm);
    let _ = write!(
        out,
        ",\n  \"ratios\": {{\n    \"hash_ops\": {hash_ratio:.2},\n    \"dense_ops_per_row\": {dense_ops_per_row:.4},\n    \"merge_cells\": {merge_ratio:.2},\n    \"memo_hit_rate\": {memo_hit_rate:.4},\n    \"memo_pool_tasks\": {memo_pool_ratio:.4}\n  }},\n  \"checks\": {{\n    \"outputs_identical\": {outputs_identical},\n    \"hash_ratio_ok\": {hash_ratio_ok},\n    \"rows_not_worse\": {rows_not_worse},\n    \"pool_engaged\": {pool_engaged},\n    \"dense_scan_improved\": {dense_scan_improved},\n    \"merge_improved\": {merge_improved},\n    \"narrow_engaged\": {narrow_engaged},\n    \"memo_engaged\": {memo_engaged},\n    \"memo_outputs_identical\": {memo_outputs_identical},\n    \"memo_work_reduced\": {memo_work_reduced}\n  }}\n}}\n"
    );

    std::fs::write(&out_path, &out).unwrap_or_else(|e| {
        eprintln!("bench-explain: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "bench-explain: hash ops {} -> {} ({hash_ratio:.1}x), rows {} -> {}, dense ops/row {dense_ops_per_row:.4}, merge cells {} radix vs {} full, narrow scans {}, memo warm hits {} (hit rate {memo_hit_rate:.2}), pool tasks {} cold -> {} warm, wrote {out_path}",
        legacy.kernel.hash_ops,
        fast.kernel.hash_ops,
        legacy.kernel.rows_scanned,
        fast.kernel.rows_scanned,
        fast.kernel.radix_merge_cells,
        fast.kernel.full_merge_cells,
        fast.kernel.narrow_scans,
        memo_warm.kernel.memo_hits_total(),
        memo_cold.pool_tasks,
        memo_warm.pool_tasks,
    );

    let ok = outputs_identical
        && hash_ratio_ok
        && rows_not_worse
        && pool_engaged
        && dense_scan_improved
        && merge_improved
        && narrow_engaged
        && memo_engaged
        && memo_outputs_identical
        && memo_work_reduced;
    if args.check && !ok {
        eprintln!(
            "bench-explain: CHECK FAILED (outputs_identical={outputs_identical}, hash_ratio_ok={hash_ratio_ok}, rows_not_worse={rows_not_worse}, pool_engaged={pool_engaged}, dense_scan_improved={dense_scan_improved}, merge_improved={merge_improved}, narrow_engaged={narrow_engaged}, memo_engaged={memo_engaged}, memo_outputs_identical={memo_outputs_identical}, memo_work_reduced={memo_work_reduced})"
        );
        std::process::exit(1);
    }
}
