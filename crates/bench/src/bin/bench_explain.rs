//! Reproducible counting-kernel benchmark for the `explain` hot path.
//!
//! Runs the same fixed-seed Flights workload twice — once with the legacy
//! hashed row-scan contingency builds, once with the dense/fused kernels —
//! and emits `BENCH_explain.json` comparing **kernel operation counters**
//! (rows scanned, hash ops, dense ops), never wall-clock: counters are
//! machine-independent, so CI can gate on them without flaking.
//!
//! The harness also asserts the two runs produce bit-identical
//! explanations (the kernels' core promise) and, with `--check`, exits
//! nonzero unless the acceptance thresholds hold:
//!
//! * ≥ 3x fewer per-row hash operations on the kernel path,
//! * kernel rows scanned ≤ legacy rows scanned,
//! * outputs identical, and
//! * pool tasks > 0 when run multi-threaded (the chunked builds actually
//!   engaged the pool).
//!
//! Usage: `bench-explain [--rows N] [--cities N] [--threads N] [--quick]
//! [--query ID] [--out PATH] [--check]`

use std::fmt::Write as _;
use std::time::Instant;

use nexus_core::{ExplainRequest, Explanation, Nexus, NexusOptions, Parallelism};
use nexus_datagen::flights::FlightsConfig;
use nexus_datagen::{flights, BENCH_QUERIES};
use nexus_info::kernel::{self, KernelMode};
use nexus_info::KernelSnapshot;

struct Args {
    rows: usize,
    cities: usize,
    threads: usize,
    query: String,
    out: String,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rows: 1_000_000,
        cities: 320,
        threads: 8,
        query: "FL-Q1".to_string(),
        out: "BENCH_explain.json".to_string(),
        check: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rows" => args.rows = value(&mut i)?.parse().map_err(|e| format!("--rows: {e}"))?,
            "--cities" => {
                args.cities = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--cities: {e}"))?
            }
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--query" => args.query = value(&mut i)?,
            "--out" => args.out = value(&mut i)?,
            "--quick" => {
                args.rows = 20_000;
                args.cities = 120;
            }
            "--check" => args.check = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

/// One measured pipeline run.
struct RunResult {
    kernel: KernelSnapshot,
    pool_tasks: u64,
    wall_ms: u128,
    signature: String,
}

/// A byte-exact digest of everything user-visible in an explanation:
/// f64s are rendered as raw bits so "equal" means bit-identical.
fn signature(e: &Explanation) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "initial={:016x};explained={:016x};stopped={};",
        e.initial_cmi.to_bits(),
        e.explained_cmi.to_bits(),
        e.stopped_by_responsibility
    );
    for a in &e.attributes {
        let _ = write!(
            s,
            "name={};resp={:016x};weighted={};",
            a.name,
            a.responsibility.to_bits(),
            a.weighted
        );
    }
    s
}

fn run_mode(
    mode: KernelMode,
    dataset: &nexus_datagen::Dataset,
    sql: &str,
    threads: usize,
) -> RunResult {
    kernel::set_mode(mode);
    let query = nexus_query::parse(sql).expect("bench SQL parses");
    let options = NexusOptions::builder()
        .parallelism(if threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Fixed(threads)
        })
        .build()
        .expect("valid options");
    let request = ExplainRequest::new()
        .table(&dataset.table)
        .knowledge_graph(&dataset.kg)
        .extraction_columns(dataset.extraction_columns.clone())
        .query(&query);
    let t0 = Instant::now();
    let explanation = Nexus::new(options).run(&request).expect("pipeline runs");
    let wall_ms = t0.elapsed().as_millis();
    kernel::set_mode(KernelMode::Auto);
    RunResult {
        kernel: explanation.stats.kernel,
        pool_tasks: explanation.stats.pool_tasks,
        wall_ms,
        signature: signature(&explanation),
    }
}

fn json_run(out: &mut String, label: &str, r: &RunResult) {
    let k = &r.kernel;
    let _ = write!(
        out,
        "  \"{label}\": {{\n    \"rows_scanned\": {},\n    \"hash_ops\": {},\n    \"dense_ops\": {},\n    \"dense_builds\": {},\n    \"sparse_builds\": {},\n    \"pool_tasks\": {},\n    \"wall_ms\": {}\n  }}",
        k.rows_scanned, k.hash_ops, k.dense_ops, k.dense_builds, k.sparse_builds, r.pool_tasks, r.wall_ms
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-explain: {e}");
            std::process::exit(2);
        }
    };
    let bench_query = BENCH_QUERIES
        .iter()
        .find(|q| q.id == args.query)
        .unwrap_or_else(|| {
            eprintln!("bench-explain: unknown query id {}", args.query);
            std::process::exit(2);
        });

    let cfg = FlightsConfig {
        n_rows: args.rows,
        n_cities: args.cities,
        ..FlightsConfig::default()
    };
    eprintln!(
        "bench-explain: generating Flights (rows={}, cities={}, seed={:#x})",
        cfg.n_rows, cfg.n_cities, cfg.seed
    );
    let dataset = flights::generate(&cfg);

    eprintln!("bench-explain: legacy pass ({} thread(s))", args.threads);
    let legacy = run_mode(KernelMode::Legacy, &dataset, bench_query.sql, args.threads);
    eprintln!("bench-explain: kernel pass ({} thread(s))", args.threads);
    let fast = run_mode(KernelMode::Auto, &dataset, bench_query.sql, args.threads);

    // Counter-based, machine-independent comparison. hash_ops can hit 0 on
    // the kernel path (everything dense); clamp so the ratio stays finite.
    let hash_ratio = legacy.kernel.hash_ops as f64 / fast.kernel.hash_ops.max(1) as f64;
    let outputs_identical = legacy.signature == fast.signature;
    let rows_not_worse = fast.kernel.rows_scanned <= legacy.kernel.rows_scanned;
    let pool_engaged = args.threads <= 1 || fast.pool_tasks > 0;
    let hash_ratio_ok = hash_ratio >= 3.0;

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"schema_version\": 1,\n  \"bench\": \"explain\",\n  \"workload\": {{\n    \"dataset\": \"Flights\",\n    \"rows\": {},\n    \"cities\": {},\n    \"seed\": {},\n    \"query_id\": \"{}\",\n    \"sql\": \"{}\",\n    \"threads\": {}\n  }},\n",
        args.rows, args.cities, cfg.seed, bench_query.id, bench_query.sql, args.threads
    );
    json_run(&mut out, "legacy", &legacy);
    out.push_str(",\n");
    json_run(&mut out, "kernel", &fast);
    let _ = write!(
        out,
        ",\n  \"ratios\": {{\n    \"hash_ops\": {hash_ratio:.2}\n  }},\n  \"checks\": {{\n    \"outputs_identical\": {outputs_identical},\n    \"hash_ratio_ok\": {hash_ratio_ok},\n    \"rows_not_worse\": {rows_not_worse},\n    \"pool_engaged\": {pool_engaged}\n  }}\n}}\n"
    );

    std::fs::write(&args.out, &out).unwrap_or_else(|e| {
        eprintln!("bench-explain: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    eprintln!(
        "bench-explain: hash ops {} -> {} ({hash_ratio:.1}x), rows {} -> {}, wrote {}",
        legacy.kernel.hash_ops,
        fast.kernel.hash_ops,
        legacy.kernel.rows_scanned,
        fast.kernel.rows_scanned,
        args.out
    );

    if args.check && !(outputs_identical && hash_ratio_ok && rows_not_worse && pool_engaged) {
        eprintln!(
            "bench-explain: CHECK FAILED (outputs_identical={outputs_identical}, hash_ratio_ok={hash_ratio_ok}, rows_not_worse={rows_not_worse}, pool_engaged={pool_engaged})"
        );
        std::process::exit(1);
    }
}
