//! # nexus-eval
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 5) over the synthetic datasets. See
//! DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured results.
//!
//! The `nexus-eval` binary dispatches the experiments:
//!
//! ```text
//! nexus-eval table1|user-study|table4|fig3|fig4|fig5|fig6|ablations|\
//!            random-queries|missing-stats|multihop|pruning-stats|latency|all \
//!            [--scale small|default|paper]
//! ```

#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod scoring;
pub mod sweeps;

pub use ablations::{ablations, Ablation};
pub use experiments::{fig2, run_user_study, table1, table2, table3, table4, QueryResults};
pub use report::{render_series, TextTable};
pub use runner::{
    contexts_for, excluded_for, prepare, run_method, DatasetCache, MethodKind, MethodRun,
    QueryContext,
};
pub use scoring::{judge, JudgeOptions, JudgedScore};
pub use sweeps::{
    fig3, fig4, fig5, fig6, latency, missing_stats, multihop, pruning_stats,
    random_query_usefulness, timed_query, PruningVariant,
};
