//! Plain-text rendering of result tables and series ("figures").

/// An aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given header.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a named series (a "figure") as an aligned x/y listing.
pub fn render_series(
    title: &str,
    x_label: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
) -> String {
    let mut out = format!("# {title}\n");
    let mut t = TextTable::new(
        &std::iter::once(x_label)
            .chain(series.iter().map(|(n, _)| *n))
            .collect::<Vec<_>>(),
    );
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![trim_float(x)];
        for (_, ys) in series {
            row.push(ys.get(i).map(|y| format!("{y:.4}")).unwrap_or_default());
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e12 {
        format!("{}", x as i64)
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].starts_with("longer-name"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "q\"t".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"t\""));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn series_rendering() {
        let s = render_series(
            "Fig X",
            "rows",
            &[10.0, 20.0],
            &[("mesa", vec![0.5, 0.25]), ("bf", vec![0.4, 0.2])],
        );
        assert!(s.contains("# Fig X"));
        assert!(s.contains("mesa"));
        assert!(s.contains("0.2500"));
    }
}
