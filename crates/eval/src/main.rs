//! CLI entry point for the experiment harness.

use nexus_datagen::Scale;
use nexus_eval::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut scale = Scale::Default;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(|s| s.as_str()) {
                    Some("small") => Scale::Small,
                    Some("default") => Scale::Default,
                    Some("paper") => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?} (small|default|paper)");
                        std::process::exit(2);
                    }
                };
            }
            name if !name.starts_with('-') => experiment = name.to_string(),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut cache = DatasetCache::new();
    let run_study = |cache: &mut DatasetCache| {
        let results = run_user_study(cache, scale);
        println!("{}", table2(&results));
        println!("{}", table3(&results));
        println!("{}", fig2(&results));
    };

    match experiment.as_str() {
        "table1" => println!("{}", table1(&mut cache, scale)),
        "table2" | "table3" | "fig2" | "user-study" => run_study(&mut cache),
        "table4" => println!("{}", table4(&mut cache, scale)),
        "fig3" => println!("{}", fig3(&mut cache, scale)),
        "fig4" => println!("{}", fig4(&mut cache, scale)),
        "fig5" => println!("{}", fig5(&mut cache, scale)),
        "fig6" => println!("{}", fig6(&mut cache, scale)),
        "random-queries" => println!("{}", random_query_usefulness(&mut cache, scale)),
        "missing-stats" => println!("{}", missing_stats(&mut cache, scale)),
        "multihop" => println!("{}", multihop(&mut cache, scale)),
        "pruning-stats" => println!("{}", pruning_stats(&mut cache, scale)),
        "ablations" => println!("{}", ablations(&mut cache, scale)),
        "latency" => println!("{}", latency(&mut cache, scale)),
        "all" => {
            println!("{}", table1(&mut cache, scale));
            run_study(&mut cache);
            println!("{}", table4(&mut cache, scale));
            println!("{}", fig3(&mut cache, scale));
            println!("{}", fig4(&mut cache, scale));
            println!("{}", fig5(&mut cache, scale));
            println!("{}", fig6(&mut cache, scale));
            println!("{}", random_query_usefulness(&mut cache, scale));
            println!("{}", missing_stats(&mut cache, scale));
            println!("{}", multihop(&mut cache, scale));
            println!("{}", pruning_stats(&mut cache, scale));
            println!("{}", ablations(&mut cache, scale));
            println!("{}", latency(&mut cache, scale));
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
}
