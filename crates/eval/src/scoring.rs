//! The simulated user study (Tables 2–3).
//!
//! The paper recruited 150 MTurk subjects to rate each method's explanation
//! for each query on a 1–5 scale. We cannot run MTurk, so we substitute a
//! deterministic **judge** that scores exactly the properties the subjects
//! rewarded (see DESIGN.md §4):
//!
//! * **precision** — are the selected attributes genuinely the planted
//!   confounders? (subjects found plausible real-world factors convincing);
//! * **explanatory strength** — how much of the correlation the selection
//!   explains away;
//! * **non-redundancy** — subjects penalized near-duplicate pairs like
//!   *Year Low F / Year Avg F* (the paper's Top-K critique);
//! * **having an explanation at all** — LR's empty outputs scored worst.
//!
//! Subject-level 1–5 ratings are then simulated with seeded noise so the
//! table reports a mean and a variance like the paper's Table 3.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nexus_core::{CandidateSet, Engine};
use nexus_datagen::rng::normal_with;

/// A judged explanation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JudgedScore {
    /// Ground-truth precision in `[0,1]`.
    pub precision: f64,
    /// Explained fraction of the initial correlation in `[0,1]`.
    pub strength: f64,
    /// Redundancy among the selected attributes in `[0,1]`.
    pub redundancy: f64,
    /// Mean simulated subject score in `[1,5]`.
    pub mean: f64,
    /// Variance of the simulated subject scores.
    pub variance: f64,
}

/// Scoring configuration.
#[derive(Debug, Clone, Copy)]
pub struct JudgeOptions {
    /// Number of simulated subjects (the paper recruited 150).
    pub n_subjects: usize,
    /// Subject noise standard deviation on the 1–5 scale.
    pub subject_sd: f64,
    /// RNG seed.
    pub seed: u64,
    /// Pairwise normalized-MI threshold above which a pair counts
    /// redundant.
    pub redundancy_threshold: f64,
}

impl Default for JudgeOptions {
    fn default() -> Self {
        JudgeOptions {
            n_subjects: 150,
            subject_sd: 0.85,
            seed: 0x10_0b5,
            redundancy_threshold: 0.7,
        }
    }
}

/// Judges one explanation against the planted ground truth.
pub fn judge(
    set: &CandidateSet,
    engine: &Engine,
    selected_names: &[String],
    ground_truth: &[&str],
    explainability: f64,
    options: &JudgeOptions,
) -> JudgedScore {
    let baseline = engine.baseline_cmi();
    let quality;
    let precision;
    let strength;
    let redundancy;
    if selected_names.is_empty() {
        // "No explanation": subjects rate ~1.5.
        precision = 0.0;
        strength = 0.0;
        redundancy = 0.0;
        quality = 0.12;
    } else {
        let hits = selected_names
            .iter()
            .filter(|n| ground_truth.contains(&n.as_str()))
            .count();
        precision = hits as f64 / selected_names.len() as f64;
        strength = if baseline > 0.0 {
            (1.0 - explainability / baseline).clamp(0.0, 1.0)
        } else {
            0.0
        };
        redundancy = redundancy_of(set, engine, selected_names, options.redundancy_threshold);
        quality = 0.55 * precision + 0.25 * strength + 0.20 * (1.0 - redundancy);
    }

    // Simulated 1–5 subject ratings.
    let ideal = 1.0 + 4.0 * quality;
    let mut rng = StdRng::seed_from_u64(
        options.seed
            ^ selected_names
                .iter()
                .flat_map(|s| s.bytes())
                .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64)),
    );
    let scores: Vec<f64> = (0..options.n_subjects)
        .map(|_| normal_with(&mut rng, ideal, options.subject_sd).clamp(1.0, 5.0))
        .collect();
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    let variance =
        scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (scores.len() - 1) as f64;
    JudgedScore {
        precision,
        strength,
        redundancy,
        mean,
        variance,
    }
}

/// Fraction of selected pairs that are redundant (normalized pairwise MI
/// above the threshold).
fn redundancy_of(set: &CandidateSet, engine: &Engine, names: &[String], threshold: f64) -> f64 {
    let indices: Vec<usize> = names.iter().filter_map(|n| set.index_of(n)).collect();
    if indices.len() < 2 {
        return 0.0;
    }
    let mut pairs = 0usize;
    let mut redundant = 0usize;
    for i in 0..indices.len() {
        for j in i + 1..indices.len() {
            pairs += 1;
            let mi = engine.mi_pair(set, indices[i], indices[j]);
            let h_min = engine
                .stats(set, indices[i])
                .h_e
                .0
                .min(engine.stats(set, indices[j]).h_e.0);
            if h_min > 1e-9 && mi / h_min > threshold {
                redundant += 1;
            }
        }
    }
    redundant as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_core::{build_candidates, Engine, NexusOptions};
    use nexus_kg::KnowledgeGraph;
    use nexus_query::parse;
    use nexus_table::{Column, Table};

    fn fixture() -> (CandidateSet, Engine) {
        let mut countries = Vec::new();
        let mut salaries = Vec::new();
        let mut kg = KnowledgeGraph::new();
        for c in 0..24 {
            let name = format!("C{c:02}");
            let hdi = (c % 4) as f64;
            let id = kg.add_entity(name.clone(), "Country");
            kg.set_literal(id, "hdi", hdi);
            kg.set_literal(id, "hdi copy", hdi * 2.0);
            kg.set_literal(id, "other", ((c / 4) % 3) as f64);
            for i in 0..20 {
                countries.push(name.clone());
                salaries.push(10.0 * hdi + (i % 2) as f64 * 0.1);
            }
        }
        let table = Table::new(vec![
            ("Country", Column::from_strs(&countries)),
            ("Salary", Column::from_f64(salaries)),
        ])
        .unwrap();
        let q = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
        let set = build_candidates(
            &table,
            &kg,
            &["Country".to_string()],
            &q,
            &NexusOptions::default(),
        )
        .unwrap();
        let engine = Engine::new(&set);
        (set, engine)
    }

    #[test]
    fn perfect_explanation_scores_high() {
        let (set, engine) = fixture();
        let s = judge(
            &set,
            &engine,
            &["Country::hdi".to_string()],
            &["Country::hdi", "Country::hdi copy"],
            0.0,
            &JudgeOptions::default(),
        );
        assert!(s.precision == 1.0);
        assert!(s.mean > 3.8, "{s:?}");
        assert!(s.variance > 0.1 && s.variance < 2.0);
    }

    #[test]
    fn empty_explanation_scores_low() {
        let (set, engine) = fixture();
        let s = judge(&set, &engine, &[], &["x"], 1.0, &JudgeOptions::default());
        assert!(s.mean < 2.0, "{s:?}");
    }

    #[test]
    fn wrong_attributes_score_low() {
        let (set, engine) = fixture();
        let s = judge(
            &set,
            &engine,
            &["Country::other".to_string()],
            &["Country::hdi"],
            1.2,
            &JudgeOptions::default(),
        );
        assert!(s.precision == 0.0);
        assert!(s.mean < 2.6, "{s:?}");
    }

    #[test]
    fn redundant_pair_penalized() {
        let (set, engine) = fixture();
        let redundant = judge(
            &set,
            &engine,
            &["Country::hdi".to_string(), "Country::hdi copy".to_string()],
            &["Country::hdi", "Country::hdi copy"],
            0.0,
            &JudgeOptions::default(),
        );
        let single = judge(
            &set,
            &engine,
            &["Country::hdi".to_string()],
            &["Country::hdi", "Country::hdi copy"],
            0.0,
            &JudgeOptions::default(),
        );
        assert!(redundant.redundancy > 0.9, "{redundant:?}");
        assert!(redundant.mean < single.mean, "{redundant:?} vs {single:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (set, engine) = fixture();
        let names = vec!["Country::hdi".to_string()];
        let a = judge(
            &set,
            &engine,
            &names,
            &["Country::hdi"],
            0.1,
            &JudgeOptions::default(),
        );
        let b = judge(
            &set,
            &engine,
            &names,
            &["Country::hdi"],
            0.1,
            &JudgeOptions::default(),
        );
        assert_eq!(a, b);
    }
}
