//! Ablations of the design choices DESIGN.md calls out: the Min-Redundancy
//! criterion (Eq. 5), permutation calibration, Miller–Madow correction, and
//! IPW selection-bias handling. Each variant swaps exactly one ingredient
//! of the selection loop; quality is measured against the planted ground
//! truth over the 14 benchmark queries.

use nexus_core::{
    apply_selection_bias_weights, build_candidates, prune_offline, prune_online, CandidateSet,
    Engine, NexusOptions,
};
use nexus_datagen::{DatasetKind, Scale, BENCH_QUERIES};

use crate::report::TextTable;
use crate::runner::{excluded_for, DatasetCache};

/// A selection-loop variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// The full configuration.
    Full,
    /// Greedy Min-CMI without the redundancy term (Eq. 5 → Eq. 2 only).
    NoRedundancy,
    /// Raw Miller–Madow CMI without permutation calibration.
    NoCalibration,
    /// Plug-in CMI (no Miller–Madow, no calibration).
    PlugIn,
    /// Calibrated scores but selection-bias IPW disabled.
    NoIpw,
}

impl Ablation {
    /// All variants.
    pub const ALL: [Ablation; 5] = [
        Ablation::Full,
        Ablation::NoRedundancy,
        Ablation::NoCalibration,
        Ablation::PlugIn,
        Ablation::NoIpw,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Ablation::Full => "full",
            Ablation::NoRedundancy => "- redundancy",
            Ablation::NoCalibration => "- calibration",
            Ablation::PlugIn => "- calibration - MM",
            Ablation::NoIpw => "- IPW",
        }
    }
}

/// Greedy selection with the variant's scoring.
fn greedy_select(
    set: &CandidateSet,
    engine: &Engine,
    options: &NexusOptions,
    ablation: Ablation,
) -> Vec<usize> {
    let v1 = |idx: usize| -> f64 {
        match ablation {
            Ablation::Full | Ablation::NoRedundancy | Ablation::NoIpw => {
                engine.cmi_single(set, idx)
            }
            Ablation::NoCalibration => engine.cmi_single_raw(set, idx),
            Ablation::PlugIn => engine.stats(set, idx).cmi_plugin(),
        }
    };
    let use_redundancy = ablation != Ablation::NoRedundancy;
    let mut selected: Vec<usize> = Vec::new();
    let mut last = engine.baseline_cmi();
    for _ in 0..options.max_explanation_size {
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..set.candidates.len() {
            if selected.contains(&idx) || !engine.eligible(set, idx, options) {
                continue;
            }
            let mut score = v1(idx);
            if use_redundancy && !selected.is_empty() {
                score += selected
                    .iter()
                    .map(|&s| engine.mi_pair(set, idx, s))
                    .sum::<f64>()
                    / selected.len() as f64;
            }
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((idx, score));
            }
        }
        let Some((idx, _)) = best else { break };
        let mut trial = selected.clone();
        trial.push(idx);
        let cmi = engine.cmi_given(set, &trial);
        if last - cmi < options.min_improvement * engine.baseline_cmi().max(1e-9)
            && !selected.is_empty()
        {
            break;
        }
        selected = trial;
        last = cmi;
    }
    selected
}

/// Runs the ablation grid over the 14 benchmark queries.
pub fn ablations(cache: &mut DatasetCache, scale: Scale) -> String {
    let base_options = NexusOptions::default();
    let mut t = TextTable::new(&[
        "Variant",
        "GT precision",
        "Explained fraction",
        "Avg |E|",
        "Empty",
    ]);
    for ablation in Ablation::ALL {
        let mut precision_sum = 0.0;
        let mut explained_sum = 0.0;
        let mut size_sum = 0usize;
        let mut empties = 0usize;
        let mut n = 0usize;
        for kind in DatasetKind::ALL {
            cache.get(kind, scale);
        }
        for bench in BENCH_QUERIES {
            let dataset = cache.get(bench.dataset, scale);
            let query = bench.parsed();
            let options = NexusOptions {
                excluded_columns: excluded_for(dataset, &query),
                handle_selection_bias: base_options.handle_selection_bias
                    && ablation != Ablation::NoIpw,
                ..base_options.clone()
            };
            let mut set = build_candidates(
                &dataset.table,
                &dataset.kg,
                &dataset.extraction_columns,
                &query,
                &options,
            )
            .expect("candidates build");
            prune_offline(&mut set, &options);
            let engine = Engine::new(&set);
            prune_online(&mut set, &engine, &options);
            if options.handle_selection_bias {
                apply_selection_bias_weights(&mut set, &engine, &options);
            }
            let picks = greedy_select(&set, &engine, &options, ablation);
            n += 1;
            if picks.is_empty() {
                empties += 1;
                continue;
            }
            let hits = picks
                .iter()
                .filter(|&&i| {
                    bench
                        .ground_truth
                        .contains(&set.candidates[i].name.as_str())
                })
                .count();
            precision_sum += hits as f64 / picks.len() as f64;
            let final_cmi = engine.cmi_given(&set, &picks);
            let baseline = engine.baseline_cmi();
            if baseline > 0.0 {
                explained_sum += (1.0 - final_cmi / baseline).clamp(0.0, 1.0);
            }
            size_sum += picks.len();
        }
        t.row(vec![
            ablation.name().to_string(),
            format!("{:.2}", precision_sum / n.max(1) as f64),
            format!("{:.2}", explained_sum / n.max(1) as f64),
            format!("{:.1}", size_sum as f64 / n.max(1) as f64),
            empties.to_string(),
        ]);
    }
    format!(
        "# Ablations of the selection-loop design choices (14 queries)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_unique() {
        let names: std::collections::HashSet<&str> =
            Ablation::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), Ablation::ALL.len());
    }

    #[test]
    fn greedy_select_smoke() {
        let mut cache = DatasetCache::new();
        let dataset = cache.get(DatasetKind::Covid, Scale::Small);
        let bench = nexus_datagen::queries_for(DatasetKind::Covid)[0];
        let query = bench.parsed();
        let options = NexusOptions {
            excluded_columns: excluded_for(dataset, &query),
            ..NexusOptions::default()
        };
        let mut set = build_candidates(
            &dataset.table,
            &dataset.kg,
            &dataset.extraction_columns,
            &query,
            &options,
        )
        .unwrap();
        prune_offline(&mut set, &options);
        let engine = Engine::new(&set);
        prune_online(&mut set, &engine, &options);
        for ablation in Ablation::ALL {
            let picks = greedy_select(&set, &engine, &options, ablation);
            assert!(picks.len() <= options.max_explanation_size, "{ablation:?}");
        }
    }
}
