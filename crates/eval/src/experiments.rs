//! The user-study experiments: Table 1 (datasets), Table 2 (explanations),
//! Table 3 (judged scores), Figure 2 (distance from Brute-Force
//! explainability), and Table 4 (unexplained subgroups).

use std::collections::HashMap;

use nexus_core::{unexplained_subgroups, NexusOptions, SubgroupOptions};
use nexus_datagen::{queries_for, DatasetKind, Scale, BENCH_QUERIES};

use crate::report::{render_series, TextTable};
use crate::runner::{contexts_for, run_method, DatasetCache, MethodKind, MethodRun};
use crate::scoring::{judge, JudgeOptions, JudgedScore};

/// One benchmark query's results across all methods.
pub struct QueryResults {
    /// Query id (`"SO-Q1"`).
    pub id: &'static str,
    /// Dataset.
    pub dataset: DatasetKind,
    /// Per-method run + judged score.
    pub methods: HashMap<MethodKind, (MethodRun, JudgedScore)>,
}

/// Runs the full user study (all 14 queries × all 7 methods).
pub fn run_user_study(cache: &mut DatasetCache, scale: Scale) -> Vec<QueryResults> {
    let options = NexusOptions::default();
    let judge_options = JudgeOptions::default();
    let mut out = Vec::new();
    for kind in DatasetKind::ALL {
        let contexts = contexts_for(cache, kind, scale, &options);
        let dataset = cache.get(kind, scale);
        for (bench, ctx) in contexts {
            let mut methods = HashMap::new();
            for mk in MethodKind::ALL {
                let mut opts = options.clone();
                opts.excluded_columns = crate::runner::excluded_for(dataset, &ctx.query);
                let run = run_method(mk, &ctx, dataset, &opts);
                let score = judge(
                    &ctx.pruned.set,
                    &ctx.pruned.engine,
                    &run.names,
                    bench.ground_truth,
                    run.explainability,
                    &judge_options,
                );
                methods.insert(mk, (run, score));
            }
            out.push(QueryResults {
                id: bench.id,
                dataset: kind,
                methods,
            });
        }
    }
    out
}

/// Table 1: the dataset inventory.
pub fn table1(cache: &mut DatasetCache, scale: Scale) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "n",
        "|E| (extractable)",
        "Columns used for extraction",
    ]);
    for kind in DatasetKind::ALL {
        let d = cache.get(kind, scale);
        // Count extractable attributes the way Table 1 does: per extraction
        // column (entity class re-extracted per column).
        let mut total = 0usize;
        for col in &d.extraction_columns {
            let linker = nexus_kg::EntityLinker::new(&d.kg);
            let (links, _) = linker.link_column(d.table.column(col).expect("column"));
            let ea = nexus_kg::extract(&d.kg, &links, &nexus_kg::ExtractOptions::default());
            total += ea.table.n_cols();
        }
        t.row(vec![
            d.name.to_string(),
            d.table.n_rows().to_string(),
            total.to_string(),
            d.extraction_columns.join(", "),
        ]);
    }
    format!("# Table 1: Examined datasets\n{}", t.render())
}

/// Table 2: the explanations produced by each method for each query.
pub fn table2(results: &[QueryResults]) -> String {
    let mut header = vec!["Dataset", "Query"];
    header.extend(MethodKind::ALL.iter().map(|m| m.name()));
    let mut t = TextTable::new(&header);
    for r in results {
        let mut row = vec![r.dataset.table_name().to_string(), r.id.to_string()];
        for mk in MethodKind::ALL {
            let names = &r.methods[&mk].0.names;
            row.push(if names.is_empty() {
                "-".to_string()
            } else {
                names
                    .iter()
                    .map(|n| n.rsplit("::").next().unwrap_or(n).to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            });
        }
        t.row(row);
    }
    format!(
        "# Table 2: Explanations per method (14 representative queries)\n{}",
        t.render()
    )
}

/// Table 3: average judged explanation scores per method.
pub fn table3(results: &[QueryResults]) -> String {
    let mut t = TextTable::new(&["Baseline", "Average Score", "Average Variance"]);
    let mut rows: Vec<(MethodKind, f64, f64)> = MethodKind::ALL
        .iter()
        .map(|&mk| {
            let scores: Vec<&JudgedScore> = results.iter().map(|r| &r.methods[&mk].1).collect();
            let mean = scores.iter().map(|s| s.mean).sum::<f64>() / scores.len() as f64;
            let var = scores.iter().map(|s| s.variance).sum::<f64>() / scores.len() as f64;
            (mk, mean, var)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (mk, mean, var) in rows {
        t.row(vec![
            mk.name().to_string(),
            format!("{mean:.1}"),
            format!("{var:.1}"),
        ]);
    }
    format!(
        "# Table 3: Avg. explanation scores (simulated user study)\n{}",
        t.render()
    )
}

/// Figure 2: distance between each method's explainability score and
/// Brute-Force's, per query.
pub fn fig2(results: &[QueryResults]) -> String {
    let methods: Vec<MethodKind> = MethodKind::ALL
        .iter()
        .copied()
        .filter(|&m| m != MethodKind::BruteForce)
        .collect();
    let xs: Vec<f64> = (1..=results.len()).map(|i| i as f64).collect();
    let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
    for &mk in &methods {
        let ys: Vec<f64> = results
            .iter()
            .map(|r| {
                let bf = r.methods[&MethodKind::BruteForce].0.explainability;
                (r.methods[&mk].0.explainability - bf).max(0.0)
            })
            .collect();
        series.push((mk.name(), ys));
    }
    let mut out = render_series(
        "Figure 2: Distance from Brute-Force explainability scores (per query)",
        "query#",
        &xs,
        &series,
    );
    out.push_str("\nAverages:\n");
    let mut t = TextTable::new(&["Method", "Avg distance from Brute-Force"]);
    for (name, ys) in &series {
        let avg = ys.iter().sum::<f64>() / ys.len() as f64;
        t.row(vec![name.to_string(), format!("{avg:.4}")]);
    }
    out.push_str(&t.render());
    out.push_str("\nQuery key:\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", i + 1, r.id));
    }
    out
}

/// Table 4: top-5 unexplained subgroups for SO-Q1, under two scenarios:
/// the full explanation (which on this synthetic data covers Europe, so
/// nothing large stays unexplained) and the paper's scenario of an
/// explanation that misses the within-Europe signal (`k = 1`, i.e. HDI
/// only — the continents and the Currency == euro group emerge, as in the
/// paper's Table 4).
pub fn table4(cache: &mut DatasetCache, scale: Scale) -> String {
    let mut out = String::new();
    for (label, k) in [("full explanation", 5usize), ("k = 1 (HDI only)", 1)] {
        let dataset = cache.get(DatasetKind::So, scale);
        let bench = queries_for(DatasetKind::So)[0];
        let query = bench.parsed();
        let opts = NexusOptions {
            excluded_columns: crate::runner::excluded_for(dataset, &query),
            max_explanation_size: k,
            ..NexusOptions::default()
        };
        let ctx = crate::runner::prepare(dataset, &query, &opts);
        let exclude: Vec<&str> = query
            .group_by
            .iter()
            .map(|s| s.as_str())
            .chain(query.outcome().map(|(_, o)| o))
            .collect();
        let t0 = std::time::Instant::now();
        let subgroups = unexplained_subgroups(
            &dataset.table,
            &ctx.pruned.set,
            &ctx.pruned.mcimr.selected,
            &exclude,
            &opts,
            &SubgroupOptions {
                k: 5,
                // Unexplained = markedly worse than the explanation does
                // globally: the paper's τ on top of the global residual.
                tau: ctx.pruned.mcimr.final_cmi + 0.15 * ctx.pruned.mcimr.initial_cmi.max(1.0),
                // Only groups large enough that the score is not
                // estimation noise (≥ 5% of the context).
                min_size: dataset.table.n_rows() / 20,
                ..SubgroupOptions::default()
            },
        )
        .expect("subgroup search runs");
        let elapsed = t0.elapsed();
        let mut t = TextTable::new(&["Rank", "Size", "Score", "Data group"]);
        for (i, s) in subgroups.iter().enumerate() {
            t.row(vec![
                (i + 1).to_string(),
                s.size.to_string(),
                format!("{:.3}", s.score),
                s.describe(),
            ]);
        }
        out.push_str(&format!(
            "# Table 4 ({label}): unexplained groups for SO Q1 (explanation: {:?}, search took {:.2?})\n{}{}\n",
            ctx.mesa_run.names,
            elapsed,
            t.render(),
            if subgroups.is_empty() {
                "(none — the explanation holds in every large subgroup)"
            } else {
                ""
            }
        ));
    }
    out
}

/// Sanity check of the query roster (exercised by tests).
pub fn n_benchmark_queries() -> usize {
    BENCH_QUERIES.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_datasets() {
        let mut cache = DatasetCache::new();
        let s = table1(&mut cache, Scale::Small);
        for name in ["SO", "Covid-19", "Flights", "Forbes"] {
            assert!(s.contains(name), "{s}");
        }
    }

    #[test]
    fn table4_finds_subgroups_on_small() {
        let mut cache = DatasetCache::new();
        let s = table4(&mut cache, Scale::Small);
        assert!(s.contains("Table 4"), "{s}");
        assert!(s.contains("Data group"));
    }

    #[test]
    fn roster_has_fourteen() {
        assert_eq!(n_benchmark_queries(), 14);
    }

    // The full user study on Small scale is exercised in the integration
    // tests (it is minutes of work, too slow for a unit test).
}
