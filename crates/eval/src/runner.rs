//! Shared machinery: dataset caching, per-query artifacts, and a uniform
//! interface over MESA and every baseline.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use nexus_baselines::{
    BruteForce, CajadeBaseline, ExplainMethod, HypDbBaseline, LinearRegressionBaseline, TopK,
};
use nexus_core::{
    mcimr, responsibilities, CandidateSet, Engine, Nexus, NexusOptions, RunArtifacts,
};
use nexus_datagen::{load, BenchQuery, Dataset, DatasetKind, Scale};
use nexus_query::AggregateQuery;

/// Every method compared in the user-study experiments, in the paper's
/// Table 2 column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Exhaustive optimum (Def. 2.3).
    BruteForce,
    /// MESA without pruning.
    MesaMinus,
    /// The full system (MCIMR + pruning + IPW).
    Mesa,
    /// Individual-power ranking.
    TopK,
    /// OLS coefficients.
    Lr,
    /// HypDB-like causal greedy over a capped pool.
    HypDb,
    /// Outcome-blind pattern selection.
    Cajade,
}

impl MethodKind {
    /// All methods, Table 2 order.
    pub const ALL: [MethodKind; 7] = [
        MethodKind::BruteForce,
        MethodKind::MesaMinus,
        MethodKind::Mesa,
        MethodKind::TopK,
        MethodKind::Lr,
        MethodKind::HypDb,
        MethodKind::Cajade,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::BruteForce => "Brute-Force",
            MethodKind::MesaMinus => "MESA-",
            MethodKind::Mesa => "MESA",
            MethodKind::TopK => "Top-K",
            MethodKind::Lr => "LR",
            MethodKind::HypDb => "HypDB",
            MethodKind::Cajade => "CajaDE",
        }
    }
}

/// The outcome of running one method on one query.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Selected attribute names.
    pub names: Vec<String>,
    /// Raw explainability score `I(O;T|C,E)` (lower is better).
    pub explainability: f64,
    /// Wall-clock selection time.
    pub runtime: Duration,
}

/// Pruned-pipeline artifacts for one query, shared by all post-pruning
/// methods, plus the separate unpruned artifacts for MESA-.
pub struct QueryContext {
    /// The query.
    pub query: AggregateQuery,
    /// Artifacts of the full (pruned) pipeline.
    pub pruned: RunArtifacts,
    /// Explanation of the full pipeline (the MESA run itself).
    pub mesa_run: MethodRun,
    /// The explanation object from the pipeline (responsibilities etc.).
    pub mesa_explanation: nexus_core::Explanation,
}

/// Prepares the shared artifacts for one query on a dataset.
pub fn prepare(dataset: &Dataset, query: &AggregateQuery, options: &NexusOptions) -> QueryContext {
    let nexus = Nexus::new(options.clone());
    let t0 = Instant::now();
    let (explanation, artifacts) = nexus
        .explain_with_artifacts(
            &dataset.table,
            &dataset.kg,
            &dataset.extraction_columns,
            query,
        )
        .expect("pipeline runs on benchmark queries");
    let elapsed = t0.elapsed();
    let names = explanation.names().iter().map(|s| s.to_string()).collect();
    QueryContext {
        query: query.clone(),
        mesa_run: MethodRun {
            names,
            explainability: explanation.explained_cmi,
            runtime: elapsed,
        },
        mesa_explanation: explanation,
        pruned: artifacts,
    }
}

/// Runs one method within a prepared context (for MESA- the dataset is
/// needed to rebuild unpruned artifacts).
pub fn run_method(
    kind: MethodKind,
    ctx: &QueryContext,
    dataset: &Dataset,
    options: &NexusOptions,
) -> MethodRun {
    match kind {
        MethodKind::Mesa => ctx.mesa_run.clone(),
        MethodKind::MesaMinus => {
            let opts = options.clone().without_pruning();
            let nexus = Nexus::new(opts);
            let t0 = Instant::now();
            let e = nexus
                .explain(
                    &dataset.table,
                    &dataset.kg,
                    &dataset.extraction_columns,
                    &ctx.query,
                )
                .expect("pipeline runs");
            MethodRun {
                names: e.names().iter().map(|s| s.to_string()).collect(),
                explainability: e.explained_cmi,
                runtime: t0.elapsed(),
            }
        }
        _ => {
            let set = &ctx.pruned.set;
            let engine = &ctx.pruned.engine;
            let method: Box<dyn ExplainMethod> = match kind {
                MethodKind::BruteForce => Box::new(BruteForce::default()),
                MethodKind::TopK => Box::new(TopK::default()),
                MethodKind::Lr => Box::new(LinearRegressionBaseline::default()),
                MethodKind::HypDb => Box::new(HypDbBaseline::default()),
                MethodKind::Cajade => Box::new(CajadeBaseline::default()),
                _ => unreachable!("handled above"),
            };
            let t0 = Instant::now();
            let picks = method.select(set, engine, options);
            let runtime = t0.elapsed();
            MethodRun {
                names: picks
                    .iter()
                    .map(|&i| set.candidates[i].name.clone())
                    .collect(),
                explainability: engine.cmi_given(set, &picks),
                runtime,
            }
        }
    }
}

/// A cache of generated datasets (generation is the expensive part).
#[derive(Default)]
pub struct DatasetCache {
    cache: HashMap<(DatasetKind, u8), Dataset>,
}

impl DatasetCache {
    /// An empty cache.
    pub fn new() -> DatasetCache {
        DatasetCache::default()
    }

    /// Gets (generating on first use) a dataset.
    pub fn get(&mut self, kind: DatasetKind, scale: Scale) -> &Dataset {
        let key = (kind, scale_tag(scale));
        self.cache.entry(key).or_insert_with(|| load(kind, scale))
    }
}

fn scale_tag(scale: Scale) -> u8 {
    match scale {
        Scale::Small => 0,
        Scale::Default => 1,
        Scale::Paper => 2,
    }
}

/// Runs MCIMR directly over given artifacts (used by sweeps that mutate the
/// candidate set).
pub fn mcimr_run(set: &CandidateSet, engine: &Engine, options: &NexusOptions) -> MethodRun {
    let t0 = Instant::now();
    let result = mcimr(set, engine, options);
    let _resp = responsibilities(set, engine, &result.selected);
    MethodRun {
        names: result
            .selected
            .iter()
            .map(|&i| set.candidates[i].name.clone())
            .collect(),
        explainability: result.final_cmi,
        runtime: t0.elapsed(),
    }
}

/// Convenience: the benchmark queries with their contexts for one dataset.
pub fn contexts_for(
    cache: &mut DatasetCache,
    kind: DatasetKind,
    scale: Scale,
    options: &NexusOptions,
) -> Vec<(&'static BenchQuery, QueryContext)> {
    // Generate dataset first (borrow ends), then prepare contexts.
    cache.get(kind, scale);
    let dataset = cache.get(kind, scale);
    nexus_datagen::queries_for(kind)
        .into_iter()
        .map(|q| {
            let mut opts = options.clone();
            opts.excluded_columns = excluded_for(dataset, &q.parsed());
            (q, prepare(dataset, &q.parsed(), &opts))
        })
        .collect()
}

/// Alternative outcome columns are never candidates (e.g. `Arrival_delay`
/// when explaining `Departure_delay` — a second measurement of the same
/// quantity, not a potential confounder).
pub fn excluded_for(dataset: &Dataset, query: &AggregateQuery) -> Vec<String> {
    let outcome = query.outcome().map(|(_, o)| o.to_string());
    dataset
        .outcome_columns
        .iter()
        .filter(|c| Some(c.as_str()) != outcome.as_deref())
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_kinds_cover_table2() {
        assert_eq!(MethodKind::ALL.len(), 7);
        assert_eq!(MethodKind::Mesa.name(), "MESA");
        assert_eq!(MethodKind::MesaMinus.name(), "MESA-");
    }

    #[test]
    fn prepare_and_run_all_methods_smoke() {
        let mut cache = DatasetCache::new();
        let dataset = cache.get(DatasetKind::Covid, Scale::Small);
        let q = nexus_datagen::queries_for(DatasetKind::Covid)[0].parsed();
        let options = NexusOptions {
            excluded_columns: excluded_for(dataset, &q),
            ..NexusOptions::default()
        };
        let ctx = prepare(dataset, &q, &options);
        assert!(!ctx.mesa_run.names.is_empty());
        for kind in MethodKind::ALL {
            let run = run_method(kind, &ctx, dataset, &options);
            // Every method terminates and reports a finite score.
            assert!(run.explainability.is_finite(), "{kind:?}");
        }
    }

    #[test]
    fn excluded_columns_cover_alt_outcomes() {
        let mut cache = DatasetCache::new();
        let dataset = cache.get(DatasetKind::Flights, Scale::Small);
        let q = nexus_datagen::queries_for(DatasetKind::Flights)[4].parsed();
        let excluded = excluded_for(dataset, &q);
        assert!(excluded.contains(&"Arrival_delay".to_string()));
        assert!(!excluded.contains(&"Departure_delay".to_string()));
    }
}
