//! Parameter sweeps: Figure 3 (robustness to missing data), Figure 4
//! (runtime vs candidate count), Figure 5 (runtime vs rows), Figure 6
//! (runtime vs explanation-size bound), plus the smaller reported numbers:
//! the Section 5.1 random-query usefulness rate, Section 5.2 missingness /
//! selection-bias prevalence, Section 5.4 multi-hop extraction, and the
//! appendix pruning statistics.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nexus_core::{
    apply_selection_bias_weights, build_candidates, mcimr, prune_offline, prune_online,
    CandidateRepr, CandidateSet, Engine, Nexus, NexusOptions, MISSING_CODE,
};
use nexus_datagen::{queries_for, random_queries, DatasetKind, Scale};

use crate::report::{render_series, TextTable};
use crate::runner::{excluded_for, DatasetCache};

/// Which pruning stages a timed run applies (the Figure 4 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruningVariant {
    /// No pruning at all.
    None,
    /// Offline pruning only.
    Offline,
    /// The full MCIMR configuration (offline + online).
    Full,
}

impl PruningVariant {
    /// Display name used in the figure.
    pub fn name(&self) -> &'static str {
        match self {
            PruningVariant::None => "No Pruning",
            PruningVariant::Offline => "Offline Pruning",
            PruningVariant::Full => "MCIMR",
        }
    }
}

/// Runs the query-time portion of the pipeline (engine build + online
/// pruning + bias handling + MCIMR) over a pre-built candidate set,
/// returning the measured duration and the selected names. Offline pruning
/// is applied before the clock starts — it is a preprocessing step in the
/// paper's accounting.
pub fn timed_query(
    mut set: CandidateSet,
    options: &NexusOptions,
    variant: PruningVariant,
) -> (Duration, Vec<String>, f64) {
    if variant != PruningVariant::None {
        prune_offline(&mut set, options);
    }
    let t0 = Instant::now();
    let engine = Engine::with_parallelism(&set, options.parallelism);
    if variant == PruningVariant::Full {
        prune_online(&mut set, &engine, options);
    }
    if options.handle_selection_bias {
        apply_selection_bias_weights(&mut set, &engine, options);
    }
    let result = mcimr(&set, &engine, options);
    let elapsed = t0.elapsed();
    let names = result
        .selected
        .iter()
        .map(|&i| set.candidates[i].name.clone())
        .collect();
    (elapsed, names, result.final_cmi)
}

/// Keeps a uniformly random subset of `n` candidates (seeded).
fn sample_candidates(set: &CandidateSet, n: usize, seed: u64) -> CandidateSet {
    let mut out = set.clone();
    if out.candidates.len() > n {
        let mut rng = StdRng::seed_from_u64(seed);
        out.candidates.shuffle(&mut rng);
        out.candidates.truncate(n);
    }
    out
}

/// Figure 4: runtime vs number of candidate attributes.
pub fn fig4(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let mut out = String::new();
    for kind in [DatasetKind::So, DatasetKind::Flights, DatasetKind::Forbes] {
        let dataset = cache.get(kind, scale);
        let bench = queries_for(kind)[0];
        let query = bench.parsed();
        let mut opts = options.clone();
        opts.excluded_columns = excluded_for(dataset, &query);
        let full = build_candidates(
            &dataset.table,
            &dataset.kg,
            &dataset.extraction_columns,
            &query,
            &opts,
        )
        .expect("candidates build");
        let total = full.candidates.len();
        let xs: Vec<usize> = [50usize, 100, 200, 300, 450, 600, 750]
            .into_iter()
            .filter(|&x| x < total)
            .chain(std::iter::once(total))
            .collect();
        let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
        for variant in [
            PruningVariant::None,
            PruningVariant::Offline,
            PruningVariant::Full,
        ] {
            let ys: Vec<f64> = xs
                .iter()
                .map(|&n| {
                    let sampled = sample_candidates(&full, n, 0xF164 + n as u64);
                    let (t, _, _) = timed_query(sampled, &opts, variant);
                    t.as_secs_f64()
                })
                .collect();
            series.push((variant.name(), ys));
        }
        let xsf: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        out.push_str(&render_series(
            &format!(
                "Figure 4 ({}): runtime [s] vs number of candidate attributes",
                dataset.name
            ),
            "candidates",
            &xsf,
            &series,
        ));
        out.push('\n');
    }
    out
}

/// Figure 5: runtime vs number of rows.
pub fn fig5(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let mut out = String::new();
    for kind in [DatasetKind::So, DatasetKind::Flights, DatasetKind::Forbes] {
        let dataset = cache.get(kind, scale);
        let bench = queries_for(kind)[0];
        let query = bench.parsed();
        let mut opts = options.clone();
        opts.excluded_columns = excluded_for(dataset, &query);
        let n = dataset.table.n_rows();
        let fracs = [0.2, 0.4, 0.6, 0.8, 1.0];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for f in fracs {
            let keep = ((n as f64) * f) as usize;
            let mut rows: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(0xF155);
            rows.shuffle(&mut rng);
            rows.truncate(keep);
            rows.sort_unstable();
            let sub = dataset.table.gather(&rows);
            let set = build_candidates(
                &sub,
                &dataset.kg,
                &dataset.extraction_columns,
                &query,
                &opts,
            )
            .expect("candidates build");
            let (t, _, _) = timed_query(set, &opts, PruningVariant::Full);
            xs.push(keep as f64);
            ys.push(t.as_secs_f64());
        }
        out.push_str(&render_series(
            &format!("Figure 5 ({}): runtime [s] vs number of rows", dataset.name),
            "rows",
            &xs,
            &[("MCIMR", ys)],
        ));
        out.push('\n');
    }
    out
}

/// Figure 6: runtime vs the bound `k` on the explanation size.
pub fn fig6(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let mut out = String::new();
    for kind in [DatasetKind::So, DatasetKind::Flights, DatasetKind::Forbes] {
        let dataset = cache.get(kind, scale);
        let bench = queries_for(kind)[0];
        let query = bench.parsed();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut sizes = Vec::new();
        for k in 1..=8usize {
            let mut opts = options.clone();
            opts.excluded_columns = excluded_for(dataset, &query);
            opts.max_explanation_size = k;
            let set = build_candidates(
                &dataset.table,
                &dataset.kg,
                &dataset.extraction_columns,
                &query,
                &opts,
            )
            .expect("candidates build");
            let (t, names, _) = timed_query(set, &opts, PruningVariant::Full);
            xs.push(k as f64);
            ys.push(t.as_secs_f64());
            sizes.push(names.len() as f64);
        }
        out.push_str(&render_series(
            &format!(
                "Figure 6 ({}): runtime [s] vs explanation-size bound k",
                dataset.name
            ),
            "k",
            &xs,
            &[("MCIMR", ys), ("|explanation|", sizes)],
        ));
        out.push('\n');
    }
    out
}

/// How to injure an attribute for the Figure 3 robustness experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Missing completely at random.
    Random,
    /// Remove the top values (biased, MNAR).
    Biased,
}

/// How the injured attributes are then handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handling {
    /// The system's approach: complete cases + selection-bias IPW.
    Ipw,
    /// Mean/mode imputation.
    Impute,
}

/// Injects missingness into the top-`n_attrs` most outcome-relevant
/// extracted candidates of a set (entity-level).
fn inject_into_set(
    set: &mut CandidateSet,
    engine: &Engine,
    fraction: f64,
    injection: Injection,
    handling: Handling,
    n_attrs: usize,
    seed: u64,
) {
    // Rank extracted candidates by relevance to O.
    let mut ranked: Vec<(usize, f64)> = (0..set.candidates.len())
        .filter(|&i| matches!(set.candidates[i].repr, CandidateRepr::EntityLevel { .. }))
        .map(|i| (i, engine.stats(set, i).relevance()))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let targets: Vec<usize> = ranked.iter().take(n_attrs).map(|&(i, _)| i).collect();

    let mut rng = StdRng::seed_from_u64(seed);
    for idx in targets {
        let CandidateRepr::EntityLevel {
            map, cardinality, ..
        } = &mut set.candidates[idx].repr
        else {
            continue;
        };
        let mut present: Vec<usize> = (0..map.len()).filter(|&e| map[e] != MISSING_CODE).collect();
        let k = ((present.len() as f64) * fraction).round() as usize;
        match injection {
            Injection::Random => present.shuffle(&mut rng),
            Injection::Biased => {
                // Highest codes first (bin codes are value-ordered).
                present.sort_by(|&a, &b| map[b].cmp(&map[a]));
            }
        }
        let removed: Vec<usize> = present.into_iter().take(k).collect();
        for &e in &removed {
            map[e] = MISSING_CODE;
        }
        if handling == Handling::Impute {
            // Mode imputation over the remaining values.
            let mut counts = vec![0usize; *cardinality as usize];
            for &v in map.iter() {
                if v != MISSING_CODE {
                    counts[v as usize] += 1;
                }
            }
            if let Some((mode, _)) = counts.iter().enumerate().max_by_key(|(_, &c)| c) {
                for v in map.iter_mut() {
                    if *v == MISSING_CODE {
                        *v = mode as u32;
                    }
                }
            }
        }
    }
}

/// Figure 3: explainability as a function of injected missing data, for SO
/// and Covid-19. Explanations are *selected* on the injured data and
/// *evaluated* on the clean data.
pub fn fig3(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let mut out = String::new();
    for kind in [DatasetKind::So, DatasetKind::Covid] {
        let dataset = cache.get(kind, scale);
        let benches = queries_for(kind);
        let mut series: Vec<(&str, Vec<f64>)> = vec![
            ("NEXUS (random)", Vec::new()),
            ("NEXUS (biased)", Vec::new()),
            ("Imputation (random)", Vec::new()),
            ("Imputation (biased)", Vec::new()),
        ];
        for &fraction in &fractions {
            let mut sums = [0.0f64; 4];
            for bench in &benches {
                let query = bench.parsed();
                let mut opts = options.clone();
                opts.excluded_columns = excluded_for(dataset, &query);
                let clean = {
                    let mut set = build_candidates(
                        &dataset.table,
                        &dataset.kg,
                        &dataset.extraction_columns,
                        &query,
                        &opts,
                    )
                    .expect("candidates build");
                    prune_offline(&mut set, &opts);
                    set
                };
                let clean_engine = Engine::new(&clean);
                for (slot, (injection, handling)) in [
                    (Injection::Random, Handling::Ipw),
                    (Injection::Biased, Handling::Ipw),
                    (Injection::Random, Handling::Impute),
                    (Injection::Biased, Handling::Impute),
                ]
                .into_iter()
                .enumerate()
                {
                    let mut injured = clean.clone();
                    inject_into_set(
                        &mut injured,
                        &clean_engine,
                        fraction,
                        injection,
                        handling,
                        10,
                        0xF13 + slot as u64,
                    );
                    let engine = Engine::new(&injured);
                    let mut run_opts = opts.clone();
                    run_opts.handle_selection_bias = handling == Handling::Ipw;
                    prune_online(&mut injured, &engine, &run_opts);
                    if run_opts.handle_selection_bias {
                        apply_selection_bias_weights(&mut injured, &engine, &run_opts);
                    }
                    let result = mcimr(&injured, &engine, &run_opts);
                    // Evaluate the chosen names on the clean data.
                    let clean_indices: Vec<usize> = result
                        .selected
                        .iter()
                        .filter_map(|&i| clean.index_of(&injured.candidates[i].name))
                        .collect();
                    sums[slot] += clean_engine.cmi_given(&clean, &clean_indices);
                }
            }
            for (slot, s) in sums.iter().enumerate() {
                series[slot].1.push(s / benches.len() as f64);
            }
        }
        let xs: Vec<f64> = fractions.iter().map(|f| f * 100.0).collect();
        let series_refs: Vec<(&str, Vec<f64>)> =
            series.iter().map(|(n, v)| (*n, v.clone())).collect();
        out.push_str(&render_series(
            &format!(
                "Figure 3 ({}): avg explainability (lower = better) vs % injected missing values",
                dataset.name
            ),
            "% missing",
            &xs,
            &series_refs,
        ));
        out.push('\n');
    }
    out
}

/// Section 5.1: fraction of random queries for which the KG approach is
/// useful.
pub fn random_query_usefulness(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let mut t = TextTable::new(&["Dataset", "Queries", "Useful", "Rate"]);
    let mut total = 0usize;
    let mut useful_total = 0usize;
    for kind in DatasetKind::ALL {
        let dataset = cache.get(kind, scale);
        let queries = random_queries(dataset, 10, 0x5EC51 + kind as u64);
        let mut useful = 0usize;
        for query in &queries {
            let mut opts = options.clone();
            opts.excluded_columns = excluded_for(dataset, query);
            let nexus = Nexus::new(opts);
            let Ok(e) = nexus.explain(
                &dataset.table,
                &dataset.kg,
                &dataset.extraction_columns,
                query,
            ) else {
                continue;
            };
            let lowered = e.explained_cmi < e.initial_cmi - 1e-9;
            let has_extracted = e
                .attributes
                .iter()
                .any(|a| matches!(a.source, nexus_core::CandidateSource::Extracted { .. }));
            if lowered && has_extracted {
                useful += 1;
            }
        }
        t.row(vec![
            dataset.name.to_string(),
            queries.len().to_string(),
            useful.to_string(),
            format!("{:.1}%", 100.0 * useful as f64 / queries.len() as f64),
        ]);
        total += queries.len();
        useful_total += useful;
    }
    format!(
        "# Section 5.1: usefulness over {total} random queries (paper: 72.5%)\nOverall: {:.1}%\n{}",
        100.0 * useful_total as f64 / total.max(1) as f64,
        t.render()
    )
}

/// Section 5.2: missingness and selection-bias prevalence per dataset.
pub fn missing_stats(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let mut t = TextTable::new(&[
        "Dataset",
        "% missing (extracted)",
        "% attrs selection-biased",
    ]);
    for kind in DatasetKind::ALL {
        let dataset = cache.get(kind, scale);
        let bench = queries_for(kind)[0];
        let query = bench.parsed();
        let mut opts = options.clone();
        opts.excluded_columns = excluded_for(dataset, &query);
        let set = build_candidates(
            &dataset.table,
            &dataset.kg,
            &dataset.extraction_columns,
            &query,
            &opts,
        )
        .expect("candidates build");
        let engine = Engine::new(&set);
        let mut missing_sum = 0.0;
        let mut n_extracted = 0usize;
        let mut n_biased = 0usize;
        for i in 0..set.candidates.len() {
            if let Some((mi_o, mi_t, missing)) = engine.bias_mi(&set, i) {
                n_extracted += 1;
                missing_sum += missing;
                if missing >= opts.bias_min_missing
                    && missing < 1.0
                    && (mi_o > opts.bias_mi_threshold || mi_t > opts.bias_mi_threshold)
                {
                    n_biased += 1;
                }
            }
        }
        t.row(vec![
            dataset.name.to_string(),
            format!("{:.1}%", 100.0 * missing_sum / n_extracted.max(1) as f64),
            format!(
                "{:.1}%",
                100.0 * n_biased as f64 / n_extracted.max(1) as f64
            ),
        ]);
    }
    format!(
        "# Section 5.2: missingness & selection-bias prevalence (paper: 37–73% / 13–29%)\n{}",
        t.render()
    )
}

/// Section 5.4: multi-hop extraction.
pub fn multihop(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let mut t = TextTable::new(&["Dataset", "Hops", "Candidates", "Explanation", "Time"]);
    for kind in [DatasetKind::So, DatasetKind::Forbes] {
        let dataset = cache.get(kind, scale);
        let bench = queries_for(kind)[0];
        let query = bench.parsed();
        for hops in 1..=3usize {
            let mut opts = options.clone();
            opts.excluded_columns = excluded_for(dataset, &query);
            opts.hops = hops;
            let t0 = Instant::now();
            let nexus = Nexus::new(opts);
            let e = nexus
                .explain(
                    &dataset.table,
                    &dataset.kg,
                    &dataset.extraction_columns,
                    &query,
                )
                .expect("pipeline runs");
            t.row(vec![
                dataset.name.to_string(),
                hops.to_string(),
                e.stats.n_candidates_initial.to_string(),
                e.names().join(", "),
                format!("{:.2?}", t0.elapsed()),
            ]);
        }
    }
    format!("# Section 5.4: multi-hop extraction\n{}", t.render())
}

/// Appendix: pruning statistics per dataset.
pub fn pruning_stats(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let mut t = TextTable::new(&[
        "Dataset",
        "Initial",
        "After offline",
        "After online",
        "% dropped offline",
        "% dropped online",
    ]);
    for kind in DatasetKind::ALL {
        let dataset = cache.get(kind, scale);
        let bench = queries_for(kind)[0];
        let query = bench.parsed();
        let mut opts = options.clone();
        opts.excluded_columns = excluded_for(dataset, &query);
        let nexus = Nexus::new(opts);
        let e = nexus
            .explain(
                &dataset.table,
                &dataset.kg,
                &dataset.extraction_columns,
                &query,
            )
            .expect("pipeline runs");
        let s = &e.stats;
        let off = s.n_candidates_initial - s.n_after_offline;
        let on = s.n_after_offline - s.n_after_online;
        t.row(vec![
            dataset.name.to_string(),
            s.n_candidates_initial.to_string(),
            s.n_after_offline.to_string(),
            s.n_after_online.to_string(),
            format!(
                "{:.1}%",
                100.0 * off as f64 / s.n_candidates_initial.max(1) as f64
            ),
            format!(
                "{:.1}%",
                100.0 * on as f64 / s.n_after_offline.max(1) as f64
            ),
        ]);
    }
    format!(
        "# Appendix: pruning statistics (paper offline: 41–73%)\n{}",
        t.render()
    )
}

/// One benchmark query per dataset, timed end-to-end — the headline
/// "interactive latency" claim (≤ 10 s on 5.8M rows).
pub fn latency(cache: &mut DatasetCache, scale: Scale) -> String {
    let options = NexusOptions::default();
    let mut t = TextTable::new(&["Query", "Rows", "Candidates", "Query-time", "Explanation"]);
    for bench in nexus_datagen::BENCH_QUERIES {
        let dataset = cache.get(bench.dataset, scale);
        let query = bench.parsed();
        let mut opts = options.clone();
        opts.excluded_columns = excluded_for(dataset, &query);
        let set = build_candidates(
            &dataset.table,
            &dataset.kg,
            &dataset.extraction_columns,
            &query,
            &opts,
        )
        .expect("candidates build");
        let n_candidates = set.candidates.len();
        let (elapsed, names, _) = timed_query(set, &opts, PruningVariant::Full);
        t.row(vec![
            bench.id.to_string(),
            dataset.table.n_rows().to_string(),
            n_candidates.to_string(),
            format!("{elapsed:.2?}"),
            names.join(", "),
        ]);
    }
    format!("# Query latency (paper: < 10 s per query)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_query_variants_run() {
        let mut cache = DatasetCache::new();
        let dataset = cache.get(DatasetKind::Covid, Scale::Small);
        let query = queries_for(DatasetKind::Covid)[0].parsed();
        let opts = NexusOptions {
            excluded_columns: excluded_for(dataset, &query),
            ..NexusOptions::default()
        };
        let set = build_candidates(
            &dataset.table,
            &dataset.kg,
            &dataset.extraction_columns,
            &query,
            &opts,
        )
        .unwrap();
        for variant in [
            PruningVariant::None,
            PruningVariant::Offline,
            PruningVariant::Full,
        ] {
            let (t, _, cmi) = timed_query(set.clone(), &opts, variant);
            assert!(t.as_secs_f64() >= 0.0);
            assert!(cmi.is_finite());
        }
    }

    #[test]
    fn candidate_sampling_respects_bound() {
        let mut cache = DatasetCache::new();
        let dataset = cache.get(DatasetKind::Covid, Scale::Small);
        let query = queries_for(DatasetKind::Covid)[0].parsed();
        let set = build_candidates(
            &dataset.table,
            &dataset.kg,
            &dataset.extraction_columns,
            &query,
            &NexusOptions::default(),
        )
        .unwrap();
        let sampled = sample_candidates(&set, 20, 1);
        assert_eq!(sampled.candidates.len(), 20);
        let all = sample_candidates(&set, 10_000, 1);
        assert_eq!(all.candidates.len(), set.candidates.len());
    }

    #[test]
    fn injection_reduces_presence_and_imputation_restores() {
        let mut cache = DatasetCache::new();
        let dataset = cache.get(DatasetKind::Covid, Scale::Small);
        let query = queries_for(DatasetKind::Covid)[0].parsed();
        let set = build_candidates(
            &dataset.table,
            &dataset.kg,
            &dataset.extraction_columns,
            &query,
            &NexusOptions::default(),
        )
        .unwrap();
        let engine = Engine::new(&set);
        let count_missing = |s: &CandidateSet| -> usize {
            s.candidates
                .iter()
                .map(|c| match &c.repr {
                    CandidateRepr::EntityLevel { map, .. } => {
                        map.iter().filter(|&&v| v == MISSING_CODE).count()
                    }
                    _ => 0,
                })
                .sum()
        };
        let before = count_missing(&set);
        let mut injured = set.clone();
        inject_into_set(
            &mut injured,
            &engine,
            0.5,
            Injection::Random,
            Handling::Ipw,
            10,
            1,
        );
        assert!(count_missing(&injured) > before);
        let mut imputed = set.clone();
        inject_into_set(
            &mut imputed,
            &engine,
            0.5,
            Injection::Random,
            Handling::Impute,
            10,
            1,
        );
        assert_eq!(
            count_missing(&imputed),
            before - count_imputed_originals(&set, &imputed)
        );
    }

    /// Entities missing in the original stay missing targets after mode
    /// imputation only if the whole attribute was empty; count the
    /// difference for the assertion above.
    fn count_imputed_originals(original: &CandidateSet, imputed: &CandidateSet) -> usize {
        original
            .candidates
            .iter()
            .zip(&imputed.candidates)
            .map(|(o, i)| match (&o.repr, &i.repr) {
                (
                    CandidateRepr::EntityLevel { map: mo, .. },
                    CandidateRepr::EntityLevel { map: mi, .. },
                ) => mo
                    .iter()
                    .zip(mi)
                    .filter(|(&a, &b)| a == MISSING_CODE && b != MISSING_CODE)
                    .count(),
                _ => 0,
            })
            .sum()
    }
}
