//! Joint-distribution counting over composite categorical keys.
//!
//! The estimators in this crate reduce every quantity to weighted counts of
//! composite keys built from one or more [`Codes`] variables. Keys are
//! mixed-radix encoded (first variable is the fastest digit); the
//! accumulator is a dense vector when the key space is small and a hash map
//! otherwise.
//!
//! # Kernel v2 scan loop
//!
//! The vectorized path folds the WHERE mask and every validity bitmap into
//! one packed selection bitmap and scans it **word at a time**: all-zero
//! 64-bit words are skipped without touching a row (counted in
//! `packed_words_skipped`), set bits inside surviving words decode with
//! `trailing_zeros`. The key width is classified once per build from the
//! checked key-space cardinality ([`kernel::ScanWidth`]); keys stay in one
//! machine word up to 64-bit spaces with a `u128` fallback beyond.
//!
//! Unweighted scans *run-coalesce*: a run of `r` consecutive rows with the
//! same composite key becomes one `counts[key] += r` write. Every
//! unweighted increment is exactly `1.0`, so the coalesced add stores the
//! same exact integer the per-row adds would have — bit-identical, while
//! `dense_ops`/`hash_ops` now count accumulator writes, not rows. Weighted
//! scans keep strict per-row, ascending-order accumulation because f64
//! weight sums are order-sensitive in their low bits.

use std::collections::HashMap;

use nexus_table::{complete_case_mask, Bitmap, Codes};

use crate::kernel::{self, KernelMode, ScanWidth};

/// Key space above which we switch from dense vectors to hash maps.
const DENSE_LIMIT: u128 = 1 << 21;

/// A weighted count accumulator over composite keys.
#[derive(Debug)]
pub enum Accumulator {
    /// Dense counts indexed by key.
    Dense(Vec<f64>),
    /// Sparse counts for large key spaces.
    Sparse(HashMap<u128, f64>),
}

impl Accumulator {
    fn with_capacity(space: u128) -> Accumulator {
        if space <= DENSE_LIMIT {
            Accumulator::Dense(vec![0.0; space as usize])
        } else {
            Accumulator::Sparse(HashMap::new())
        }
    }

    /// Row-aware dense policy for the kernel path. Dense is always taken
    /// under the unconditional budget, and still pays for larger key
    /// spaces when the space is within a small multiple of the rows about
    /// to be scanned — the zeroed table amortizes against the per-row
    /// hashing it replaces. The hard cap bounds the transient allocation
    /// (2^25 f64 cells = 256 MiB).
    fn for_scan(space: u128, rows_to_scan: u128) -> Accumulator {
        const DENSE_ROWS_FACTOR: u128 = 32;
        const DENSE_HARD_CAP: u128 = 1 << 25;
        let dense = space <= DENSE_LIMIT
            || (space <= DENSE_HARD_CAP && space <= rows_to_scan.saturating_mul(DENSE_ROWS_FACTOR));
        if dense {
            Accumulator::Dense(vec![0.0; space as usize])
        } else {
            Accumulator::Sparse(HashMap::new())
        }
    }

    fn is_dense(&self) -> bool {
        matches!(self, Accumulator::Dense(_))
    }

    #[inline]
    fn add(&mut self, key: u128, w: f64) {
        match self {
            Accumulator::Dense(v) => v[key as usize] += w,
            Accumulator::Sparse(m) => *m.entry(key).or_insert(0.0) += w,
        }
    }

    /// Iterates over `(key, count)` pairs with nonzero count, **in key
    /// order**. Deterministic order matters: these counts feed f64
    /// entropy sums, whose low bits depend on summation order — and
    /// NEXUS guarantees bit-identical results across runs and thread
    /// counts.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u128, f64)> + '_> {
        match self {
            Accumulator::Dense(v) => Box::new(
                v.iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0.0)
                    .map(|(k, &c)| (k as u128, c)),
            ),
            Accumulator::Sparse(m) => {
                let mut cells: Vec<(u128, f64)> = m.iter().map(|(&k, &c)| (k, c)).collect();
                cells.sort_unstable_by_key(|&(k, _)| k);
                Box::new(cells.into_iter())
            }
        }
    }

    /// Number of distinct keys with nonzero count.
    pub fn n_cells(&self) -> usize {
        self.iter().count()
    }
}

/// Per-build scan accounting: accumulator writes performed and all-zero
/// packed selection words skipped.
#[derive(Debug, Default)]
struct ScanTally {
    adds: u64,
    words_skipped: u64,
}

/// Dispatches the vectorized scan across (packed mask | full range) ×
/// (weighted | unweighted), keeping every hot loop monomorphic in the key
/// type.
#[allow(clippy::too_many_arguments)]
fn scan_vectorized<K, F>(
    selection: Option<&Bitmap>,
    n: usize,
    key_of: F,
    weights: Option<&[f64]>,
    counts: &mut Accumulator,
    total: &mut f64,
    rows: &mut usize,
    tally: &mut ScanTally,
) where
    K: Copy + PartialEq + Into<u128>,
    F: Fn(usize) -> K,
{
    match (selection, weights) {
        (Some(sel), None) => scan_packed_unweighted(sel.words(), &key_of, counts, rows, tally),
        (Some(sel), Some(w)) => {
            scan_packed_weighted(sel.words(), &key_of, w, counts, total, rows, tally)
        }
        (None, None) => scan_range_unweighted(n, &key_of, counts, rows, tally),
        (None, Some(w)) => scan_range_weighted(n, &key_of, w, counts, total, rows, tally),
    }
    if weights.is_none() {
        // Unweighted increments are exactly 1.0, so the running total is
        // the exact integer `rows` — identical to summing 1.0 per row.
        *total = *rows as f64;
    }
}

/// Packed-mask scan, unweighted: skips all-zero selection words, decodes
/// set bits with `trailing_zeros`, and run-coalesces consecutive equal
/// keys into one exact-integer add.
fn scan_packed_unweighted<K, F>(
    words: &[u64],
    key_of: &F,
    counts: &mut Accumulator,
    rows: &mut usize,
    tally: &mut ScanTally,
) where
    K: Copy + PartialEq + Into<u128>,
    F: Fn(usize) -> K,
{
    let mut last: Option<K> = None;
    let mut run = 0.0f64;
    for (wi, &w) in words.iter().enumerate() {
        if w == 0 {
            tally.words_skipped += 1;
            continue;
        }
        let base = wi * 64;
        let mut bits = w;
        while bits != 0 {
            let i = base + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let key = key_of(i);
            if last == Some(key) {
                run += 1.0;
            } else {
                if let Some(k) = last {
                    counts.add(k.into(), run);
                    tally.adds += 1;
                }
                last = Some(key);
                run = 1.0;
            }
            *rows += 1;
        }
    }
    if let Some(k) = last {
        counts.add(k.into(), run);
        tally.adds += 1;
    }
}

/// Packed-mask scan, weighted: strict per-row ascending accumulation (f64
/// weight sums are order-sensitive), zero/negative weights skipped.
#[allow(clippy::too_many_arguments)]
fn scan_packed_weighted<K, F>(
    words: &[u64],
    key_of: &F,
    weights: &[f64],
    counts: &mut Accumulator,
    total: &mut f64,
    rows: &mut usize,
    tally: &mut ScanTally,
) where
    K: Copy + PartialEq + Into<u128>,
    F: Fn(usize) -> K,
{
    for (wi, &w) in words.iter().enumerate() {
        if w == 0 {
            tally.words_skipped += 1;
            continue;
        }
        let base = wi * 64;
        let mut bits = w;
        while bits != 0 {
            let i = base + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let wt = weights[i];
            if wt <= 0.0 {
                continue;
            }
            counts.add(key_of(i).into(), wt);
            tally.adds += 1;
            *total += wt;
            *rows += 1;
        }
    }
}

/// Unconstrained scan (no mask, no nulls), unweighted, run-coalesced.
fn scan_range_unweighted<K, F>(
    n: usize,
    key_of: &F,
    counts: &mut Accumulator,
    rows: &mut usize,
    tally: &mut ScanTally,
) where
    K: Copy + PartialEq + Into<u128>,
    F: Fn(usize) -> K,
{
    let mut last: Option<K> = None;
    let mut run = 0.0f64;
    for i in 0..n {
        let key = key_of(i);
        if last == Some(key) {
            run += 1.0;
        } else {
            if let Some(k) = last {
                counts.add(k.into(), run);
                tally.adds += 1;
            }
            last = Some(key);
            run = 1.0;
        }
    }
    *rows = n;
    if let Some(k) = last {
        counts.add(k.into(), run);
        tally.adds += 1;
    }
}

/// Unconstrained scan, weighted, strict per-row order.
fn scan_range_weighted<K, F>(
    n: usize,
    key_of: &F,
    weights: &[f64],
    counts: &mut Accumulator,
    total: &mut f64,
    rows: &mut usize,
    tally: &mut ScanTally,
) where
    K: Copy + PartialEq + Into<u128>,
    F: Fn(usize) -> K,
{
    for (i, &wt) in weights.iter().enumerate().take(n) {
        if wt <= 0.0 {
            continue;
        }
        counts.add(key_of(i).into(), wt);
        tally.adds += 1;
        *total += wt;
        *rows += 1;
    }
}

/// Weighted joint counts over a set of variables.
#[derive(Debug)]
pub struct JointCounts {
    /// The accumulator of weighted counts.
    pub counts: Accumulator,
    /// Cardinality (radix) of each variable, fastest digit first.
    pub radices: Vec<u128>,
    /// Total weight over counted rows.
    pub total: f64,
    /// Number of rows counted (unweighted).
    pub rows: usize,
}

impl JointCounts {
    /// Counts the joint distribution of `vars` over rows that are
    ///
    /// * within `mask` (if given),
    /// * valid (non-null) in **every** variable,
    ///
    /// each contributing `weights[row]` (or 1).
    ///
    /// All variables must share the same length; `vars` must be non-empty.
    ///
    /// Dispatches on the process-global [`KernelMode`]; the result is
    /// bit-identical across modes (rows are visited in ascending order
    /// either way, so every f64 accumulation order is preserved).
    pub fn count(vars: &[&Codes], mask: Option<&Bitmap>, weights: Option<&[f64]>) -> JointCounts {
        Self::count_with_mode(vars, mask, weights, kernel::mode())
    }

    /// [`JointCounts::count`] with an explicit [`KernelMode`], for tests
    /// and benches that must not rely on (or race over) the global mode.
    pub fn count_with_mode(
        vars: &[&Codes],
        mask: Option<&Bitmap>,
        weights: Option<&[f64]>,
        mode: KernelMode,
    ) -> JointCounts {
        Self::count_impl(vars, mask, weights, mode, false)
    }

    /// [`JointCounts::count`] with the accumulator forced sparse — a test
    /// hook so the equivalence suite can pit dense against hashed builds
    /// on key spaces that would normally dispatch dense.
    pub fn count_forced_sparse(
        vars: &[&Codes],
        mask: Option<&Bitmap>,
        weights: Option<&[f64]>,
    ) -> JointCounts {
        Self::count_impl(vars, mask, weights, KernelMode::Auto, true)
    }

    fn count_impl(
        vars: &[&Codes],
        mask: Option<&Bitmap>,
        weights: Option<&[f64]>,
        mode: KernelMode,
        force_sparse: bool,
    ) -> JointCounts {
        assert!(
            !vars.is_empty(),
            "JointCounts requires at least one variable"
        );
        let n = vars[0].len();
        for v in vars {
            assert_eq!(v.len(), n, "variable length mismatch");
        }
        if let Some(w) = weights {
            assert_eq!(w.len(), n, "weights length mismatch");
        }
        if let Some(m) = mask {
            assert_eq!(m.len(), n, "mask length mismatch");
        }

        let radices: Vec<u128> = vars
            .iter()
            .map(|v| (v.cardinality as u128).max(1))
            .collect();
        let space: u128 = radices
            .iter()
            .try_fold(1u128, |acc, &r| acc.checked_mul(r))
            .expect("joint key space exceeds u128");
        let vectorized = mode == KernelMode::Auto && n <= u32::MAX as usize;
        // Fold the mask and every validity bitmap into one packed
        // word-level AND. `None` means no constraint exists and `0..n` is
        // the selection. Computed before the accumulator so the dense
        // decision can be row-aware.
        let selection: Option<Option<Bitmap>> = if vectorized {
            let validities: Vec<&Bitmap> =
                vars.iter().filter_map(|v| v.validity.as_ref()).collect();
            Some(complete_case_mask(n, mask, &validities))
        } else {
            None
        };
        let rows_to_scan = match &selection {
            Some(Some(s)) => s.count_ones(),
            _ => n,
        };

        let mut counts = if force_sparse {
            Accumulator::Sparse(HashMap::new())
        } else if vectorized {
            Accumulator::for_scan(space, rows_to_scan as u128)
        } else {
            Accumulator::with_capacity(space)
        };
        let mut total = 0.0;
        let mut rows = 0usize;
        let mut tally = ScanTally::default();

        let rows_scanned: u64;
        if let Some(selection) = selection {
            rows_scanned = rows_to_scan as u64;
            if space <= u64::MAX as u128 {
                // All keys fit u64: mixed-radix arithmetic in one word.
                let radices64: Vec<u64> = radices.iter().map(|&r| r as u64).collect();
                let key_of = |i: usize| -> u64 {
                    let mut key = 0u64;
                    for (v, r) in vars.iter().zip(&radices64).rev() {
                        key = key * r + v.codes[i] as u64;
                    }
                    key
                };
                scan_vectorized(
                    selection.as_ref(),
                    n,
                    key_of,
                    weights,
                    &mut counts,
                    &mut total,
                    &mut rows,
                    &mut tally,
                );
            } else {
                let key_of = |i: usize| -> u128 {
                    let mut key = 0u128;
                    for (v, r) in vars.iter().zip(&radices).rev() {
                        key = key * r + v.codes[i] as u128;
                    }
                    key
                };
                scan_vectorized(
                    selection.as_ref(),
                    n,
                    key_of,
                    weights,
                    &mut counts,
                    &mut total,
                    &mut rows,
                    &mut tally,
                );
            }
        } else {
            // Legacy path: per-row masked scan with a branchy validity
            // chain. Kept (a) as the route for tables too large for u32
            // selection vectors and (b) so the bench harness can compare
            // kernels against the original behavior on identical inputs.
            let validities: Vec<Option<&Bitmap>> =
                vars.iter().map(|v| v.validity.as_ref()).collect();
            rows_scanned = n as u64;
            'rows: for i in 0..n {
                if let Some(m) = mask {
                    if !m.get(i) {
                        continue;
                    }
                }
                for b in validities.iter().flatten() {
                    if !b.get(i) {
                        continue 'rows;
                    }
                }
                let mut key = 0u128;
                // Mixed radix, last variable as the most significant digit.
                for (v, r) in vars.iter().zip(&radices).rev() {
                    key = key * r + v.codes[i] as u128;
                }
                let w = weights.map_or(1.0, |w| w[i]);
                if w <= 0.0 {
                    continue;
                }
                counts.add(key, w);
                total += w;
                rows += 1;
            }
            // Legacy accounting: one accumulator op per counted row.
            tally.adds = rows as u64;
        }

        // One batched counter update per build. `tally.adds` counts
        // accumulator writes — equal to counted rows on the legacy and
        // weighted paths, and the (smaller) number of coalesced runs on
        // unweighted vectorized scans.
        let dense = counts.is_dense();
        if !dense && std::env::var_os("NEXUS_KERNEL_DEBUG").is_some() {
            eprintln!(
                "sparse build: space={space} rows_scanned={rows_scanned} rows={rows} nvars={}",
                vars.len()
            );
        }
        let counters = kernel::counters();
        counters.record_build(
            rows_scanned,
            if dense { 0 } else { tally.adds },
            if dense { tally.adds } else { 0 },
            dense,
        );
        if vectorized {
            counters.record_scan_width(ScanWidth::for_space(space));
            if tally.words_skipped > 0 {
                counters.record_packed_words_skipped(tally.words_skipped);
            }
        }

        JointCounts {
            counts,
            radices,
            total,
            rows,
        }
    }

    /// Shannon entropy (bits) of the counted joint distribution.
    pub fn entropy(&self) -> f64 {
        entropy_from_counts(self.counts.iter().map(|(_, c)| c), self.total)
    }

    /// Plug-in entropy together with the number of occupied cells
    /// (for Miller–Madow bias correction).
    pub fn entropy_and_cells(&self) -> (f64, usize) {
        (self.entropy(), self.counts.n_cells())
    }

    /// Entropy (bits) of the marginal over the variable subset `keep`
    /// (indices into the original `vars` order).
    pub fn marginal_entropy(&self, keep: &[usize]) -> f64 {
        self.marginal_entropy_and_cells(keep).0
    }

    /// Marginal plug-in entropy together with its occupied-cell count.
    ///
    /// A `BTreeMap` keeps the marginal cells in key order so the entropy
    /// sum is reproducible bit-for-bit (see [`Accumulator::iter`]).
    pub fn marginal_entropy_and_cells(&self, keep: &[usize]) -> (f64, usize) {
        let mut marg: std::collections::BTreeMap<u128, f64> = std::collections::BTreeMap::new();
        for (key, c) in self.counts.iter() {
            marg.entry(self.project(key, keep))
                .and_modify(|v| *v += c)
                .or_insert(c);
        }
        (
            entropy_from_counts(marg.values().copied(), self.total),
            marg.len(),
        )
    }

    /// Projects a composite key onto the variable subset `keep`.
    #[inline]
    fn project(&self, mut key: u128, keep: &[usize]) -> u128 {
        // Decode all digits, re-encode the kept ones.
        let mut digits = [0u128; 16];
        assert!(self.radices.len() <= 16, "too many joint variables");
        for (d, &r) in self.radices.iter().enumerate() {
            digits[d] = key % r;
            key /= r;
        }
        let mut out = 0u128;
        for &k in keep.iter().rev() {
            out = out * self.radices[k] + digits[k];
        }
        out
    }
}

/// Miller–Madow bias-corrected entropy in bits:
/// `Ĥ_MM = Ĥ + (K − 1) / (2 N ln 2)` where `K` is the number of occupied
/// cells and `N` the (weighted) sample size. The plug-in estimator
/// underestimates entropy by roughly this amount, which systematically
/// *deflates* conditional mutual information on small supports — exactly
/// the regime where sparsely-observed KG attributes would otherwise look
/// like spuriously perfect explanations.
pub fn entropy_mm(h_plugin: f64, cells: usize, total: f64) -> f64 {
    if total <= 0.0 {
        return h_plugin;
    }
    h_plugin + cells.saturating_sub(1) as f64 / (2.0 * total * std::f64::consts::LN_2)
}

/// Entropy in bits from raw weighted counts and their total.
pub fn entropy_from_counts(counts: impl Iterator<Item = f64>, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for c in counts {
        if c > 0.0 {
            acc += c * c.log2();
        }
    }
    (total.log2() - acc / total).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(values: &[u32], card: u32) -> Codes {
        Codes {
            codes: values.to_vec(),
            cardinality: card,
            validity: None,
        }
    }

    #[test]
    fn uniform_entropy_is_log2() {
        let x = codes(&[0, 1, 2, 3], 4);
        let j = JointCounts::count(&[&x], None, None);
        assert!((j.entropy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_entropy_is_zero() {
        let x = codes(&[1, 1, 1], 3);
        let j = JointCounts::count(&[&x], None, None);
        assert!(j.entropy().abs() < 1e-12);
    }

    #[test]
    fn joint_counts_respect_mask_and_validity() {
        let mut x = codes(&[0, 1, 0, 1], 2);
        let mut validity = Bitmap::with_value(4, true);
        validity.set(3, false);
        x.validity = Some(validity);
        let mask: Bitmap = vec![true, true, false, true].into_iter().collect();
        let j = JointCounts::count(&[&x], Some(&mask), None);
        // rows 0 and 1 survive (2 masked out, 3 null)
        assert_eq!(j.rows, 2);
        assert!((j.entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_distribution() {
        let x = codes(&[0, 1], 2);
        let j = JointCounts::count(&[&x], None, Some(&[3.0, 1.0]));
        // p = (0.75, 0.25): H = 0.8113
        assert!((j.entropy() - 0.8112781244591328).abs() < 1e-9);
        assert_eq!(j.total, 4.0);
    }

    #[test]
    fn marginal_matches_direct_count() {
        let x = codes(&[0, 0, 1, 1, 0], 2);
        let y = codes(&[0, 1, 0, 1, 1], 2);
        let j = JointCounts::count(&[&x, &y], None, None);
        let hx_direct = JointCounts::count(&[&x], None, None).entropy();
        let hy_direct = JointCounts::count(&[&y], None, None).entropy();
        assert!((j.marginal_entropy(&[0]) - hx_direct).abs() < 1e-12);
        assert!((j.marginal_entropy(&[1]) - hy_direct).abs() < 1e-12);
        assert!((j.marginal_entropy(&[0, 1]) - j.entropy()).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_rows_skipped() {
        let x = codes(&[0, 1], 2);
        let j = JointCounts::count(&[&x], None, Some(&[1.0, 0.0]));
        assert_eq!(j.rows, 1);
        assert!(j.entropy().abs() < 1e-12);
    }

    #[test]
    fn large_cardinality_uses_sparse() {
        // Force the sparse path with a huge synthetic cardinality.
        let x = codes(&[0, 1, 2], 3_000_000);
        let j = JointCounts::count(&[&x], None, None);
        assert!(matches!(j.counts, Accumulator::Sparse(_)));
        assert!((j.entropy() - (3.0f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn entropy_from_counts_empty() {
        assert_eq!(entropy_from_counts(std::iter::empty(), 0.0), 0.0);
    }

    /// Collects `(key, count)` cells for bitwise comparison across paths.
    fn cells(j: &JointCounts) -> Vec<(u128, u64)> {
        j.counts.iter().map(|(k, c)| (k, c.to_bits())).collect()
    }

    #[test]
    fn kernel_and_legacy_paths_agree_bitwise() {
        let mut x = codes(&[0, 3, 1, 2, 3, 0, 1, 1, 2], 4);
        let mut validity = Bitmap::with_value(9, true);
        validity.set(4, false);
        x.validity = Some(validity);
        let y = codes(&[1, 0, 1, 0, 1, 1, 0, 0, 1], 2);
        let mask: Bitmap = (0..9).map(|i| i != 2).collect();
        let weights = [0.5, 1.25, 2.0, 0.0, 1.0, 3.5, 0.75, 1.0, 0.25];

        let auto =
            JointCounts::count_with_mode(&[&x, &y], Some(&mask), Some(&weights), KernelMode::Auto);
        let legacy = JointCounts::count_with_mode(
            &[&x, &y],
            Some(&mask),
            Some(&weights),
            KernelMode::Legacy,
        );
        let sparse = JointCounts::count_forced_sparse(&[&x, &y], Some(&mask), Some(&weights));

        assert_eq!(auto.rows, legacy.rows);
        assert_eq!(auto.total.to_bits(), legacy.total.to_bits());
        assert_eq!(cells(&auto), cells(&legacy));
        assert!(auto.counts.is_dense());
        assert!(!sparse.counts.is_dense());
        assert_eq!(cells(&auto), cells(&sparse));
        assert_eq!(auto.entropy().to_bits(), legacy.entropy().to_bits());
        assert_eq!(auto.entropy().to_bits(), sparse.entropy().to_bits());
    }

    #[test]
    fn builds_move_kernel_counters() {
        let x = codes(&[0, 1, 0, 1], 2);
        let before = crate::kernel::counters().snapshot();
        let j = JointCounts::count_with_mode(&[&x], None, None, KernelMode::Auto);
        assert!(j.counts.is_dense());
        let d = crate::kernel::counters().snapshot().delta(&before);
        assert!(d.rows_scanned >= 4);
        assert!(d.dense_ops >= 4);
        assert!(d.dense_builds >= 1);
    }
}
