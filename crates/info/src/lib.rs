//! # nexus-info
//!
//! Information-theoretic estimators for the NEXUS system: plug-in entropy,
//! mutual information, and conditional mutual information over discretized
//! columns, with optional row masks (query contexts) and inverse-probability
//! weights, plus approximate-FD tests and a stratified-permutation
//! conditional-independence test.
//!
//! This crate replaces the `pyitlib` dependency of the original paper.
//!
//! All quantities are in **bits**. Estimation is over "complete cases": rows
//! inside the mask that are valid (non-null) in every participating
//! variable, matching Section 3.2 of the paper.
//!
//! ## Example
//!
//! ```
//! use nexus_table::Column;
//! use nexus_info::{mutual_information, cmi};
//!
//! let t = Column::from_strs(&["a", "a", "b", "b"]).category_codes().unwrap();
//! let o = Column::from_strs(&["hi", "hi", "lo", "lo"]).category_codes().unwrap();
//! let z = Column::from_strs(&["x", "x", "y", "y"]).category_codes().unwrap();
//! assert!(mutual_information(&t, &o) > 0.9);       // strong correlation
//! assert!(cmi(&t, &o, &[&z]) < 1e-9);              // explained away by z
//! ```

#![warn(missing_docs)]

pub mod counter;
pub mod estimator;
pub mod fd;
pub mod independence;
pub mod kernel;

pub use counter::{entropy_from_counts, entropy_mm, Accumulator, JointCounts};
pub use estimator::{cmi, entropy, mutual_information, InfoContext};
pub use fd::{approx_fd, logically_dependent, DEFAULT_FD_EPSILON};
pub use independence::{ci_test, ci_test_default, CiTestOptions, CiTestResult};
pub use kernel::{KernelCounters, KernelMode, KernelSnapshot, MemoKind, ScanWidth, MEMO_KINDS};
