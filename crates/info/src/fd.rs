//! Approximate functional-dependency detection.
//!
//! The paper's online pruning drops candidate attributes that are logically
//! dependent on the exposure or outcome (Lemma A.2): conditioning on an
//! attribute with `E ⇒ T` trivially zeroes `I(O;T|E)` without being a real
//! confounder (e.g. `CountryCode ⇒ Country`). An approximate FD `X ⇒ Y`
//! holds when `H(Y|X) ≈ 0`.

use nexus_table::Codes;

use crate::estimator::InfoContext;

/// Default tolerance (bits) under which a conditional entropy counts as zero.
pub const DEFAULT_FD_EPSILON: f64 = 0.01;

/// Whether the approximate functional dependency `X ⇒ Y` holds, i.e.
/// `H(Y|X) ≤ epsilon`.
pub fn approx_fd(ctx: &InfoContext<'_>, x: &Codes, y: &Codes, epsilon: f64) -> bool {
    ctx.conditional_entropy(y, &[x]) <= epsilon
}

/// Whether `X` and `Y` are logically equivalent in both directions
/// (`H(Y|X) ≈ H(X|Y) ≈ 0`), the paper's test for discarding attributes tied
/// to the exposure or outcome.
pub fn logically_dependent(ctx: &InfoContext<'_>, x: &Codes, y: &Codes, epsilon: f64) -> bool {
    approx_fd(ctx, x, y, epsilon) && approx_fd(ctx, y, x, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(values: &[u32], card: u32) -> Codes {
        Codes {
            codes: values.to_vec(),
            cardinality: card,
            validity: None,
        }
    }

    #[test]
    fn exact_fd_detected() {
        // x determines y: y = x % 2
        let xv: Vec<u32> = (0..100).map(|i| i % 4).collect();
        let yv: Vec<u32> = xv.iter().map(|&x| x % 2).collect();
        let x = codes(&xv, 4);
        let y = codes(&yv, 2);
        let ctx = InfoContext::default();
        assert!(approx_fd(&ctx, &x, &y, DEFAULT_FD_EPSILON));
        // y does not determine x
        assert!(!approx_fd(&ctx, &y, &x, DEFAULT_FD_EPSILON));
        assert!(!logically_dependent(&ctx, &x, &y, DEFAULT_FD_EPSILON));
    }

    #[test]
    fn bijection_is_logically_dependent() {
        let xv: Vec<u32> = (0..100).map(|i| i % 5).collect();
        let yv: Vec<u32> = xv.iter().map(|&x| (x + 3) % 5).collect();
        let x = codes(&xv, 5);
        let y = codes(&yv, 5);
        let ctx = InfoContext::default();
        assert!(logically_dependent(&ctx, &x, &y, DEFAULT_FD_EPSILON));
    }

    #[test]
    fn noisy_fd_respects_epsilon() {
        // y = x%2 except for a few exceptions.
        let xv: Vec<u32> = (0..200).map(|i| i % 4).collect();
        let mut yv: Vec<u32> = xv.iter().map(|&x| x % 2).collect();
        for i in 0..4 {
            yv[i * 50] ^= 1;
        }
        let x = codes(&xv, 4);
        let y = codes(&yv, 2);
        let ctx = InfoContext::default();
        assert!(!approx_fd(&ctx, &x, &y, 0.001));
        assert!(approx_fd(&ctx, &x, &y, 0.2));
    }

    #[test]
    fn independent_variables_not_fd() {
        let xv: Vec<u32> = (0..64).map(|i| i % 4).collect();
        let yv: Vec<u32> = (0..64).map(|i| (i / 4) % 4).collect();
        let x = codes(&xv, 4);
        let y = codes(&yv, 4);
        let ctx = InfoContext::default();
        assert!(!approx_fd(&ctx, &x, &y, DEFAULT_FD_EPSILON));
    }
}
