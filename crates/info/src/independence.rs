//! Conditional-independence testing.
//!
//! The paper's responsibility test (Lemma 4.2) asks whether
//! `O ⫫ E | E_selected` holds; following the HypDB test the paper cites, we
//! use a stratified permutation test on the plug-in CMI: permute `X` within
//! each stratum of `Z` (which preserves `P(X|Z)` and `P(Y|Z)` but breaks any
//! conditional dependence) and compare the observed CMI against the
//! permutation distribution.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nexus_table::{Bitmap, Codes};

use crate::estimator::InfoContext;

/// Configuration for the permutation test.
#[derive(Debug, Clone, Copy)]
pub struct CiTestOptions {
    /// Number of permutations.
    pub n_permutations: usize,
    /// Significance level: independence is rejected when the fraction of
    /// permuted CMIs ≥ the observed CMI is below `alpha`.
    pub alpha: f64,
    /// RNG seed (tests are deterministic given the seed).
    pub seed: u64,
    /// Fast path: if the observed CMI is below this threshold, declare
    /// independence without permuting; if above `10×` it, declare
    /// dependence. Set to 0 to always permute.
    pub cmi_shortcut: f64,
}

impl Default for CiTestOptions {
    fn default() -> Self {
        CiTestOptions {
            n_permutations: 100,
            alpha: 0.05,
            seed: 0x5eed,
            cmi_shortcut: 1e-3,
        }
    }
}

/// Result of a conditional-independence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiTestResult {
    /// The observed CMI `I(X;Y|Z)`.
    pub observed_cmi: f64,
    /// The permutation p-value (1.0 when the shortcut fired as independent,
    /// 0.0 when it fired as dependent).
    pub p_value: f64,
    /// Whether the data is consistent with `X ⫫ Y | Z`.
    pub independent: bool,
}

/// Tests `X ⫫ Y | Z` on the complete-case rows under `ctx`.
pub fn ci_test(
    ctx: &InfoContext<'_>,
    x: &Codes,
    y: &Codes,
    z: &[&Codes],
    options: &CiTestOptions,
) -> CiTestResult {
    let observed = ctx.cmi(x, y, z);

    if options.cmi_shortcut > 0.0 {
        if observed < options.cmi_shortcut {
            return CiTestResult {
                observed_cmi: observed,
                p_value: 1.0,
                independent: true,
            };
        }
        if observed > options.cmi_shortcut * 10.0 && z.is_empty() {
            // Unconditional MI this large is effectively never a permutation
            // artifact at realistic sample sizes.
            return CiTestResult {
                observed_cmi: observed,
                p_value: 0.0,
                independent: false,
            };
        }
    }

    // Identify the complete-case rows once (mask + all validities).
    let n = x.len();
    let usable: Vec<usize> = (0..n)
        .filter(|&i| {
            ctx.mask.is_none_or(|m| m.get(i))
                && x.is_valid(i)
                && y.is_valid(i)
                && z.iter().all(|v| v.is_valid(i))
        })
        .collect();
    if usable.len() < 2 {
        return CiTestResult {
            observed_cmi: observed,
            p_value: 1.0,
            independent: true,
        };
    }
    // Large-sample shortcut for the conditional case: at 10k+ complete
    // cases a CMI this far above zero cannot be a permutation artifact,
    // and each permutation costs a full row scan.
    if options.cmi_shortcut > 0.0 && observed > options.cmi_shortcut * 50.0 && usable.len() > 10_000
    {
        return CiTestResult {
            observed_cmi: observed,
            p_value: 0.0,
            independent: false,
        };
    }

    // Group usable rows by the stratum key of Z.
    let strata: Vec<Vec<usize>> = if z.is_empty() {
        vec![usable.to_vec()]
    } else {
        let radices: Vec<u128> = z.iter().map(|v| (v.cardinality as u128).max(1)).collect();
        // Keyed order matters: the strata consume the permutation RNG in
        // sequence, so stratum order must be reproducible across runs.
        let mut map: std::collections::BTreeMap<u128, Vec<usize>> =
            std::collections::BTreeMap::new();
        for &i in &usable {
            let mut key = 0u128;
            for (v, r) in z.iter().zip(&radices).rev() {
                key = key * r + v.codes[i] as u128;
            }
            map.entry(key).or_default().push(i);
        }
        map.into_values().collect()
    };

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut exceed = 0usize;
    let mut permuted_x = x.clone();
    // Mark every row valid in the permuted copy only where usable; simpler:
    // keep the original validity, we only rewrite codes of usable rows.
    for _ in 0..options.n_permutations {
        for stratum in &strata {
            // Permute the X codes among the rows of the stratum.
            let mut vals: Vec<u32> = stratum.iter().map(|&i| x.codes[i]).collect();
            vals.shuffle(&mut rng);
            for (&i, v) in stratum.iter().zip(vals) {
                permuted_x.codes[i] = v;
            }
        }
        if ctx.cmi(&permuted_x, y, z) >= observed {
            exceed += 1;
        }
    }
    let p_value = (exceed + 1) as f64 / (options.n_permutations + 1) as f64;
    CiTestResult {
        observed_cmi: observed,
        p_value,
        independent: p_value >= options.alpha,
    }
}

/// Convenience wrapper: unmasked, unweighted CI test with default options.
pub fn ci_test_default(x: &Codes, y: &Codes, z: &[&Codes]) -> CiTestResult {
    ci_test(&InfoContext::default(), x, y, z, &CiTestOptions::default())
}

/// Builds a mask over all rows (helper for callers that want explicit masks).
pub fn full_mask(n: usize) -> Bitmap {
    Bitmap::with_value(n, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(values: &[u32], card: u32) -> Codes {
        Codes {
            codes: values.to_vec(),
            cardinality: card,
            validity: None,
        }
    }

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u32
        }
    }

    #[test]
    fn independent_variables_pass() {
        let mut next = lcg(7);
        let n = 400;
        let x = codes(&(0..n).map(|_| next() % 3).collect::<Vec<_>>(), 3);
        let y = codes(&(0..n).map(|_| next() % 3).collect::<Vec<_>>(), 3);
        let r = ci_test_default(&x, &y, &[]);
        assert!(r.independent, "p={} cmi={}", r.p_value, r.observed_cmi);
    }

    #[test]
    fn dependent_variables_fail() {
        let mut next = lcg(11);
        let n = 400;
        let xv: Vec<u32> = (0..n).map(|_| next() % 3).collect();
        let yv: Vec<u32> = xv.to_vec(); // y == x
        let x = codes(&xv, 3);
        let y = codes(&yv, 3);
        let r = ci_test_default(&x, &y, &[]);
        assert!(!r.independent);
    }

    #[test]
    fn conditional_independence_detected() {
        // X <- Z -> Y: dependent marginally, independent given Z.
        let mut next = lcg(13);
        let n = 2000;
        let zv: Vec<u32> = (0..n).map(|_| next() % 2).collect();
        let xv: Vec<u32> = zv.iter().map(|&z| (z * 2 + next() % 2) % 4).collect();
        let yv: Vec<u32> = zv.iter().map(|&z| (z * 2 + next() % 2) % 4).collect();
        let z = codes(&zv, 2);
        let x = codes(&xv, 4);
        let y = codes(&yv, 4);
        let marg = ci_test_default(&x, &y, &[]);
        assert!(!marg.independent, "marginally dependent by construction");
        let cond = ci_test(
            &InfoContext::default(),
            &x,
            &y,
            &[&z],
            &CiTestOptions {
                cmi_shortcut: 0.0, // force the permutation path
                ..CiTestOptions::default()
            },
        );
        assert!(cond.independent, "p={}", cond.p_value);
    }

    #[test]
    fn conditional_dependence_detected() {
        let mut next = lcg(17);
        let n = 1000;
        let zv: Vec<u32> = (0..n).map(|_| next() % 2).collect();
        // X depends on Z and noise; Y = X xor Z -> Y depends on X given Z.
        let xv: Vec<u32> = (0..n).map(|_| next() % 2).collect();
        let yv: Vec<u32> = xv.iter().zip(&zv).map(|(&x, &z)| x ^ z).collect();
        let z = codes(&zv, 2);
        let x = codes(&xv, 2);
        let y = codes(&yv, 2);
        let r = ci_test(
            &InfoContext::default(),
            &x,
            &y,
            &[&z],
            &CiTestOptions::default(),
        );
        assert!(!r.independent);
    }

    #[test]
    fn shortcut_fires_for_tiny_cmi() {
        let x = codes(&[0, 1, 0, 1], 2);
        let y = codes(&[0, 0, 1, 1], 2);
        let r = ci_test_default(&x, &y, &[]);
        assert!(r.independent);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut next = lcg(23);
        let n = 300;
        let x = codes(&(0..n).map(|_| next() % 3).collect::<Vec<_>>(), 3);
        let y = codes(&(0..n).map(|_| next() % 3).collect::<Vec<_>>(), 3);
        let opts = CiTestOptions {
            cmi_shortcut: 0.0,
            ..CiTestOptions::default()
        };
        let ctx = InfoContext::default();
        let a = ci_test(&ctx, &x, &y, &[], &opts);
        let b = ci_test(&ctx, &x, &y, &[], &opts);
        assert_eq!(a.p_value, b.p_value);
    }

    #[test]
    fn degenerate_support_is_independent() {
        let mut x = codes(&[0, 1], 2);
        x.validity = Some(Bitmap::with_value(2, false));
        let y = codes(&[0, 1], 2);
        let r = ci_test_default(&x, &y, &[]);
        assert!(r.independent);
    }
}
