//! The estimator façade: entropy / MI / CMI over [`Codes`] variables with an
//! optional row mask (the query context `C`) and optional IPW weights.
//!
//! All quantities are plug-in (maximum-likelihood) estimates in **bits** over
//! the rows that are inside the mask and valid in *every* participating
//! variable — the "complete cases" of the paper, optionally reweighted.

use nexus_table::{Bitmap, Codes};

use crate::counter::{entropy_mm, JointCounts};

/// Estimation context: a row subset and per-row weights.
///
/// `InfoContext::default()` estimates over all rows, unweighted.
#[derive(Debug, Clone, Copy, Default)]
pub struct InfoContext<'a> {
    /// Row subset (the query context `C`); `None` means all rows.
    pub mask: Option<&'a Bitmap>,
    /// Inverse-probability weights; `None` means unweighted.
    pub weights: Option<&'a [f64]>,
}

impl<'a> InfoContext<'a> {
    /// A context restricted to `mask`.
    pub fn masked(mask: &'a Bitmap) -> Self {
        InfoContext {
            mask: Some(mask),
            weights: None,
        }
    }

    /// A context with IPW weights.
    pub fn weighted(weights: &'a [f64]) -> Self {
        InfoContext {
            mask: None,
            weights: Some(weights),
        }
    }

    /// Entropy `H(X)` in bits.
    pub fn entropy(&self, x: &Codes) -> f64 {
        JointCounts::count(&[x], self.mask, self.weights).entropy()
    }

    /// Joint entropy `H(X₁,…,Xₙ)` in bits.
    ///
    /// # Panics
    /// Panics if `vars` is empty.
    pub fn joint_entropy(&self, vars: &[&Codes]) -> f64 {
        JointCounts::count(vars, self.mask, self.weights).entropy()
    }

    /// Conditional entropy `H(X | Z₁,…,Zₙ)` in bits.
    ///
    /// With an empty `given`, this is plain `H(X)`.
    pub fn conditional_entropy(&self, x: &Codes, given: &[&Codes]) -> f64 {
        if given.is_empty() {
            return self.entropy(x);
        }
        let mut vars: Vec<&Codes> = Vec::with_capacity(given.len() + 1);
        vars.push(x);
        vars.extend_from_slice(given);
        let joint = JointCounts::count(&vars, self.mask, self.weights);
        let z_idx: Vec<usize> = (1..vars.len()).collect();
        (joint.entropy() - joint.marginal_entropy(&z_idx)).max(0.0)
    }

    /// Mutual information `I(X;Y)` in bits, over rows valid in both.
    pub fn mutual_information(&self, x: &Codes, y: &Codes) -> f64 {
        let joint = JointCounts::count(&[x, y], self.mask, self.weights);
        let h_xy = joint.entropy();
        let h_x = joint.marginal_entropy(&[0]);
        let h_y = joint.marginal_entropy(&[1]);
        (h_x + h_y - h_xy).max(0.0)
    }

    /// Conditional mutual information `I(X;Y | Z₁,…,Zₙ)` in bits.
    ///
    /// `I(X;Y|Z) = H(X,Z) + H(Y,Z) − H(X,Y,Z) − H(Z)`, all estimated on the
    /// common complete-case support. With empty `z` this reduces to
    /// `I(X;Y)`.
    pub fn cmi(&self, x: &Codes, y: &Codes, z: &[&Codes]) -> f64 {
        if z.is_empty() {
            return self.mutual_information(x, y);
        }
        let mut vars: Vec<&Codes> = Vec::with_capacity(z.len() + 2);
        vars.push(x);
        vars.push(y);
        vars.extend_from_slice(z);
        let joint = JointCounts::count(&vars, self.mask, self.weights);
        let z_idx: Vec<usize> = (2..vars.len()).collect();
        let mut xz_idx = vec![0usize];
        xz_idx.extend_from_slice(&z_idx);
        let mut yz_idx = vec![1usize];
        yz_idx.extend_from_slice(&z_idx);

        let h_xyz = joint.entropy();
        let h_xz = joint.marginal_entropy(&xz_idx);
        let h_yz = joint.marginal_entropy(&yz_idx);
        let h_z = joint.marginal_entropy(&z_idx);
        (h_xz + h_yz - h_xyz - h_z).max(0.0)
    }

    /// Number of complete-case rows shared by `vars` under the mask.
    pub fn support(&self, vars: &[&Codes]) -> usize {
        JointCounts::count(vars, self.mask, self.weights).rows
    }

    /// Miller–Madow bias-corrected `I(X;Y)` (see
    /// [`crate::counter::entropy_mm`]). Use when comparing MI values across
    /// different complete-case supports.
    pub fn mutual_information_mm(&self, x: &Codes, y: &Codes) -> f64 {
        let joint = JointCounts::count(&[x, y], self.mask, self.weights);
        let n = joint.total;
        let (h_xy, k_xy) = joint.entropy_and_cells();
        let (h_x, k_x) = joint.marginal_entropy_and_cells(&[0]);
        let (h_y, k_y) = joint.marginal_entropy_and_cells(&[1]);
        (entropy_mm(h_x, k_x, n) + entropy_mm(h_y, k_y, n) - entropy_mm(h_xy, k_xy, n)).max(0.0)
    }

    /// Miller–Madow bias-corrected `I(X;Y|Z)`. The correction makes CMIs
    /// comparable across candidates with different complete-case supports.
    pub fn cmi_mm(&self, x: &Codes, y: &Codes, z: &[&Codes]) -> f64 {
        if z.is_empty() {
            return self.mutual_information_mm(x, y);
        }
        let mut vars: Vec<&Codes> = Vec::with_capacity(z.len() + 2);
        vars.push(x);
        vars.push(y);
        vars.extend_from_slice(z);
        let joint = JointCounts::count(&vars, self.mask, self.weights);
        let n = joint.total;
        let z_idx: Vec<usize> = (2..vars.len()).collect();
        let mut xz_idx = vec![0usize];
        xz_idx.extend_from_slice(&z_idx);
        let mut yz_idx = vec![1usize];
        yz_idx.extend_from_slice(&z_idx);

        let (h_xyz, k_xyz) = joint.entropy_and_cells();
        let (h_xz, k_xz) = joint.marginal_entropy_and_cells(&xz_idx);
        let (h_yz, k_yz) = joint.marginal_entropy_and_cells(&yz_idx);
        let (h_z, k_z) = joint.marginal_entropy_and_cells(&z_idx);
        (entropy_mm(h_xz, k_xz, n) + entropy_mm(h_yz, k_yz, n)
            - entropy_mm(h_xyz, k_xyz, n)
            - entropy_mm(h_z, k_z, n))
        .max(0.0)
    }
}

/// Convenience: unmasked, unweighted `H(X)`.
pub fn entropy(x: &Codes) -> f64 {
    InfoContext::default().entropy(x)
}

/// Convenience: unmasked, unweighted `I(X;Y)`.
pub fn mutual_information(x: &Codes, y: &Codes) -> f64 {
    InfoContext::default().mutual_information(x, y)
}

/// Convenience: unmasked, unweighted `I(X;Y|Z)`.
pub fn cmi(x: &Codes, y: &Codes, z: &[&Codes]) -> f64 {
    InfoContext::default().cmi(x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(values: &[u32], card: u32) -> Codes {
        Codes {
            codes: values.to_vec(),
            cardinality: card,
            validity: None,
        }
    }

    #[test]
    fn mi_of_identical_variables_is_entropy() {
        let x = codes(&[0, 1, 2, 0, 1, 2, 0, 0], 3);
        let h = entropy(&x);
        let i = mutual_information(&x, &x);
        assert!((h - i).abs() < 1e-12);
        assert!(h > 0.0);
    }

    #[test]
    fn mi_of_independent_variables_is_zero() {
        // Perfectly balanced independent design.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for x in 0..4u32 {
            for y in 0..4u32 {
                xs.push(x);
                ys.push(y);
            }
        }
        let x = codes(&xs, 4);
        let y = codes(&ys, 4);
        assert!(mutual_information(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn mi_symmetry() {
        let x = codes(&[0, 1, 1, 0, 2, 2, 1], 3);
        let y = codes(&[1, 0, 1, 1, 0, 1, 0], 2);
        assert!((mutual_information(&x, &y) - mutual_information(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn cmi_explains_away_confounder() {
        // Z uniform; X = Z, Y = Z: I(X;Y) = H(Z) > 0, but I(X;Y|Z) = 0.
        let z_vals: Vec<u32> = (0..64).map(|i| i % 4).collect();
        let z = codes(&z_vals, 4);
        let x = codes(&z_vals, 4);
        let y = codes(&z_vals, 4);
        assert!(mutual_information(&x, &y) > 1.9);
        assert!(cmi(&x, &y, &[&z]).abs() < 1e-9);
    }

    #[test]
    fn cmi_with_empty_conditioning_is_mi() {
        let x = codes(&[0, 1, 0, 1, 1], 2);
        let y = codes(&[0, 1, 1, 1, 0], 2);
        assert!((cmi(&x, &y, &[]) - mutual_information(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_holds() {
        // H(X,Y) = H(X) + H(Y|X) for arbitrary data.
        let x = codes(&[0, 1, 2, 0, 1, 2, 2, 1, 0, 0], 3);
        let y = codes(&[1, 0, 1, 1, 0, 0, 1, 1, 0, 1], 2);
        let ctx = InfoContext::default();
        let lhs = ctx.joint_entropy(&[&x, &y]);
        let rhs = ctx.entropy(&x) + ctx.conditional_entropy(&y, &[&x]);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn conditioning_reduces_entropy() {
        let x = codes(&[0, 1, 2, 3, 0, 1, 2, 3], 4);
        let y = codes(&[0, 0, 1, 1, 0, 0, 1, 1], 2);
        let ctx = InfoContext::default();
        assert!(ctx.conditional_entropy(&x, &[&y]) <= ctx.entropy(&x) + 1e-12);
    }

    #[test]
    fn masked_estimation_restricts_rows() {
        let x = codes(&[0, 0, 1, 1], 2);
        let y = codes(&[0, 1, 0, 1], 2);
        // On the full data X,Y independent; restricted to rows {0,3}, X=Y.
        let mask: Bitmap = vec![true, false, false, true].into_iter().collect();
        let ctx = InfoContext::masked(&mask);
        assert!((ctx.mutual_information(&x, &y) - 1.0).abs() < 1e-12);
        assert_eq!(ctx.support(&[&x, &y]), 2);
    }

    #[test]
    fn weighted_mi_reweights_rows() {
        // Rows: (0,0),(1,1),(0,1),(1,0) each once -> MI = 0.
        let x = codes(&[0, 1, 0, 1], 2);
        let y = codes(&[0, 1, 1, 0], 2);
        assert!(mutual_information(&x, &y).abs() < 1e-12);
        // Heavily upweight the diagonal rows -> strong dependence.
        let w = [10.0, 10.0, 1.0, 1.0];
        let ctx = InfoContext::weighted(&w);
        assert!(ctx.mutual_information(&x, &y) > 0.3);
    }

    #[test]
    fn null_rows_excluded_from_support() {
        let mut x = codes(&[0, 1, 0, 1], 2);
        let mut v = Bitmap::with_value(4, true);
        v.set(0, false);
        x.validity = Some(v);
        let y = codes(&[0, 1, 1, 0], 2);
        let ctx = InfoContext::default();
        assert_eq!(ctx.support(&[&x, &y]), 3);
        assert_eq!(ctx.support(&[&y]), 4);
    }

    #[test]
    fn cmi_nonnegative_on_noise() {
        // Deterministic pseudo-random codes; plug-in CMI must stay >= 0.
        let n = 500;
        let mut s = 12345u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u32
        };
        let x = codes(&(0..n).map(|_| next() % 3).collect::<Vec<_>>(), 3);
        let y = codes(&(0..n).map(|_| next() % 4).collect::<Vec<_>>(), 4);
        let z = codes(&(0..n).map(|_| next() % 2).collect::<Vec<_>>(), 2);
        let v = cmi(&x, &y, &[&z]);
        assert!(v >= 0.0);
    }
}
