//! Counting-kernel instrumentation and dispatch mode.
//!
//! Every score NEXUS produces reduces to building weighted contingency /
//! joint-count tables, so the per-row *accumulator operations* of those
//! builds — not wall-clock, which varies with the machine — are the
//! system's portable cost model. This module holds:
//!
//! * [`KernelCounters`] — process-global atomic counters bumped (in batch,
//!   once per build or chunk, never per row) by the counting kernels in
//!   this crate and by the engine's contingency builds in `nexus-core`;
//! * [`KernelSnapshot`] — a copyable snapshot with [`delta`] arithmetic so
//!   callers can attribute counter movement to one pipeline run;
//! * [`KernelMode`] — the process-global kernel dispatch override used by
//!   the bench harness to compare the dense/fused kernels against the
//!   legacy hashed row-scan on identical inputs.
//!
//! Counters are monotone and `Relaxed`: they are diagnostics, never inputs
//! to any estimate, so they cannot perturb NEXUS's bit-identical-output
//! guarantee.
//!
//! # Kernel v2 counters
//!
//! The v2 scan loop adds four cost dimensions next to the v1 row/op
//! counts:
//!
//! * [`narrow_scans`] — builds whose inner loop ran at a narrow (8- or
//!   16-bit) code/key width, the precondition for cache-resident,
//!   auto-vectorizable scans;
//! * [`packed_words_skipped`] — all-zero 64-bit selection words the packed
//!   mask scan skipped without touching any row (zone-style early-out);
//! * [`radix_merge_cells`] / [`full_merge_cells`] — cells actually written
//!   by radix-partitioned sub-histogram merges vs the cells the v1
//!   full-keyspace merge discipline would have written for the same
//!   builds (`keyspace × merge events`). Their ratio is the merge-cost
//!   reduction, independent of wall-clock;
//! * `builds_w8 … builds_w128` — per-width build counts, recorded once
//!   per build via [`KernelCounters::record_scan_width`].
//!
//! # Memo counters
//!
//! The sub-query memo store (`nexus-core::memo`) records its traffic here
//! too, per cached-value kind ([`MemoKind`]): hits, misses, inserts, and
//! evictions, plus the number of times a request blocked on another
//! request's in-flight build instead of duplicating it
//! (`memo_coalesced_waits`). Like the kernel counters they are portable
//! cost evidence: a warm memoized run proves itself with `hits > 0` and
//! fewer pool tasks, never with wall-clock.
//!
//! [`delta`]: KernelSnapshot::delta
//! [`narrow_scans`]: KernelSnapshot::narrow_scans
//! [`packed_words_skipped`]: KernelSnapshot::packed_words_skipped
//! [`radix_merge_cells`]: KernelSnapshot::radix_merge_cells
//! [`full_merge_cells`]: KernelSnapshot::full_merge_cells

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Number of distinct [`MemoKind`] values (array dimension of the per-kind
/// memo counters).
pub const MEMO_KINDS: usize = 4;

/// What kind of sub-query value a memo entry caches. Doubles as the index
/// into the per-kind counter arrays of [`KernelCounters`] /
/// [`KernelSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MemoKind {
    /// A per-column joint-count contingency table.
    Contingency = 0,
    /// A per-set complete-case selection (fused mask + codes).
    Selection = 1,
    /// A marginal entropy / conditional-mutual-information term.
    CmiTerm = 2,
    /// A KG extraction column (row→entity codes + candidates).
    Extraction = 3,
}

impl MemoKind {
    /// All kinds, in counter-array index order.
    pub const ALL: [MemoKind; MEMO_KINDS] = [
        MemoKind::Contingency,
        MemoKind::Selection,
        MemoKind::CmiTerm,
        MemoKind::Extraction,
    ];

    /// A stable lowercase label (used in dotted metric names).
    pub fn label(self) -> &'static str {
        match self {
            MemoKind::Contingency => "contingency",
            MemoKind::Selection => "selection",
            MemoKind::CmiTerm => "cmi_term",
            MemoKind::Extraction => "extraction",
        }
    }
}

/// How counting kernels dispatch between the dense/fused fast paths and
/// the legacy hashed row-scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Dense flat-array kernels over packed selection masks where the key
    /// space fits the budget; sparse (hashed) fallback otherwise.
    #[default]
    Auto,
    /// The pre-kernel behavior: per-row masked scans with a hash-map entry
    /// operation per surviving row. Exists so the bench harness and the
    /// equivalence suite can compare both paths on identical inputs.
    Legacy,
}

/// Process-global dispatch mode (see [`set_mode`]).
static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global [`KernelMode`].
///
/// Intended for single-controller processes (the bench harness); library
/// code and tests that need a specific mode should pass it explicitly
/// (e.g. `Engine::with_kernel`) instead of toggling global state.
pub fn set_mode(mode: KernelMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current process-global [`KernelMode`].
pub fn mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Legacy,
        _ => KernelMode::Auto,
    }
}

/// The element width a counting build's inner loop ran at: the width of
/// the fused (T,O)/candidate code column (engine builds) or of the packed
/// mixed-radix key (joint-count builds).
///
/// Chosen once per build from the *checked* key-space cardinality, never
/// per row, so the scan loop itself is monomorphic and branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanWidth {
    /// Key space fits in 8 bits (≤ 256 cells / codes).
    W8,
    /// Key space fits in 16 bits (≤ 65 536).
    W16,
    /// Key space fits in 32 bits.
    W32,
    /// Key space fits in 64 bits.
    W64,
    /// Anything wider (the u128 row-scan fallback).
    W128,
}

impl ScanWidth {
    /// The narrowest width whose key range covers `space` cells
    /// (keys run `0..space`).
    pub fn for_space(space: u128) -> ScanWidth {
        if space <= 1 << 8 {
            ScanWidth::W8
        } else if space <= 1 << 16 {
            ScanWidth::W16
        } else if space <= 1 << 32 {
            ScanWidth::W32
        } else if space <= u64::MAX as u128 + 1 {
            ScanWidth::W64
        } else {
            ScanWidth::W128
        }
    }

    /// Whether this width counts as a narrow scan (8/16-bit codes, the
    /// cache-resident fast class).
    pub fn is_narrow(self) -> bool {
        matches!(self, ScanWidth::W8 | ScanWidth::W16)
    }
}

/// Process-global counters for every counting-kernel invocation.
///
/// All counters are cumulative over the process lifetime; use
/// [`KernelCounters::snapshot`] + [`KernelSnapshot::delta`] to scope them
/// to one region.
#[derive(Debug, Default)]
pub struct KernelCounters {
    rows_scanned: AtomicU64,
    hash_ops: AtomicU64,
    dense_ops: AtomicU64,
    dense_builds: AtomicU64,
    sparse_builds: AtomicU64,
    narrow_scans: AtomicU64,
    packed_words_skipped: AtomicU64,
    radix_merge_cells: AtomicU64,
    full_merge_cells: AtomicU64,
    builds_w8: AtomicU64,
    builds_w16: AtomicU64,
    builds_w32: AtomicU64,
    builds_w64: AtomicU64,
    builds_w128: AtomicU64,
    memo_hits: [AtomicU64; MEMO_KINDS],
    memo_misses: [AtomicU64; MEMO_KINDS],
    memo_inserts: [AtomicU64; MEMO_KINDS],
    memo_evictions: [AtomicU64; MEMO_KINDS],
    memo_coalesced_waits: AtomicU64,
}

/// A four-slot array of zeroed atomics (const-initializable; used only to
/// build the static below, never shared between fields).
#[allow(clippy::declare_interior_mutable_const)]
const MEMO_ZEROS: [AtomicU64; MEMO_KINDS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// The global counter instance.
static COUNTERS: KernelCounters = KernelCounters {
    rows_scanned: AtomicU64::new(0),
    hash_ops: AtomicU64::new(0),
    dense_ops: AtomicU64::new(0),
    dense_builds: AtomicU64::new(0),
    sparse_builds: AtomicU64::new(0),
    narrow_scans: AtomicU64::new(0),
    packed_words_skipped: AtomicU64::new(0),
    radix_merge_cells: AtomicU64::new(0),
    full_merge_cells: AtomicU64::new(0),
    builds_w8: AtomicU64::new(0),
    builds_w16: AtomicU64::new(0),
    builds_w32: AtomicU64::new(0),
    builds_w64: AtomicU64::new(0),
    builds_w128: AtomicU64::new(0),
    memo_hits: MEMO_ZEROS,
    memo_misses: MEMO_ZEROS,
    memo_inserts: MEMO_ZEROS,
    memo_evictions: MEMO_ZEROS,
    memo_coalesced_waits: AtomicU64::new(0),
};

/// The process-global [`KernelCounters`].
pub fn counters() -> &'static KernelCounters {
    &COUNTERS
}

impl KernelCounters {
    /// Records one finished counting build: `rows` row visits, `hash_ops`
    /// hash-map entry operations, `dense_ops` flat-array increments, and
    /// whether the build used a dense accumulator.
    ///
    /// Under run-coalescing, `dense_ops`/`hash_ops` count *accumulator
    /// writes* (one per coalesced run), so they may be lower than `rows`.
    pub fn record_build(&self, rows: u64, hash_ops: u64, dense_ops: u64, dense: bool) {
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        self.hash_ops.fetch_add(hash_ops, Ordering::Relaxed);
        self.dense_ops.fetch_add(dense_ops, Ordering::Relaxed);
        if dense {
            self.dense_builds.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sparse_builds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the scan width one build ran at (once per build). Narrow
    /// widths (8/16-bit) also bump `narrow_scans`.
    pub fn record_scan_width(&self, width: ScanWidth) {
        let bucket = match width {
            ScanWidth::W8 => &self.builds_w8,
            ScanWidth::W16 => &self.builds_w16,
            ScanWidth::W32 => &self.builds_w32,
            ScanWidth::W64 => &self.builds_w64,
            ScanWidth::W128 => &self.builds_w128,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
        if width.is_narrow() {
            self.narrow_scans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `words` all-zero 64-bit selection words skipped by a packed
    /// mask scan (batched per build or chunk).
    pub fn record_packed_words_skipped(&self, words: u64) {
        self.packed_words_skipped
            .fetch_add(words, Ordering::Relaxed);
    }

    /// Records one histogram merge event: `radix_cells` cells actually
    /// written by the radix-partitioned merge vs `full_cells` the v1
    /// full-keyspace merge would have written (keyspace size).
    pub fn record_merge(&self, radix_cells: u64, full_cells: u64) {
        self.radix_merge_cells
            .fetch_add(radix_cells, Ordering::Relaxed);
        self.full_merge_cells
            .fetch_add(full_cells, Ordering::Relaxed);
    }

    /// Records one memo-store lookup that found a published entry.
    pub fn record_memo_hit(&self, kind: MemoKind) {
        self.memo_hits[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one memo-store lookup that found nothing (the caller
    /// becomes the builder or a coalesced waiter).
    pub fn record_memo_miss(&self, kind: MemoKind) {
        self.memo_misses[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one value published into the memo store.
    pub fn record_memo_insert(&self, kind: MemoKind) {
        self.memo_inserts[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` entries of `kind` evicted by budget enforcement.
    pub fn record_memo_evictions(&self, kind: MemoKind, n: u64) {
        self.memo_evictions[kind as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request blocking on another request's in-flight build
    /// instead of duplicating it.
    pub fn record_memo_coalesced_wait(&self) {
        self.memo_coalesced_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters (each counter is read
    /// atomically; the set is not a transaction, which is fine for
    /// monotone diagnostics).
    pub fn snapshot(&self) -> KernelSnapshot {
        KernelSnapshot {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            hash_ops: self.hash_ops.load(Ordering::Relaxed),
            dense_ops: self.dense_ops.load(Ordering::Relaxed),
            dense_builds: self.dense_builds.load(Ordering::Relaxed),
            sparse_builds: self.sparse_builds.load(Ordering::Relaxed),
            narrow_scans: self.narrow_scans.load(Ordering::Relaxed),
            packed_words_skipped: self.packed_words_skipped.load(Ordering::Relaxed),
            radix_merge_cells: self.radix_merge_cells.load(Ordering::Relaxed),
            full_merge_cells: self.full_merge_cells.load(Ordering::Relaxed),
            builds_w8: self.builds_w8.load(Ordering::Relaxed),
            builds_w16: self.builds_w16.load(Ordering::Relaxed),
            builds_w32: self.builds_w32.load(Ordering::Relaxed),
            builds_w64: self.builds_w64.load(Ordering::Relaxed),
            builds_w128: self.builds_w128.load(Ordering::Relaxed),
            memo_hits: load4(&self.memo_hits),
            memo_misses: load4(&self.memo_misses),
            memo_inserts: load4(&self.memo_inserts),
            memo_evictions: load4(&self.memo_evictions),
            memo_coalesced_waits: self.memo_coalesced_waits.load(Ordering::Relaxed),
        }
    }
}

/// Relaxed load of a per-kind counter array.
fn load4(a: &[AtomicU64; MEMO_KINDS]) -> [u64; MEMO_KINDS] {
    [
        a[0].load(Ordering::Relaxed),
        a[1].load(Ordering::Relaxed),
        a[2].load(Ordering::Relaxed),
        a[3].load(Ordering::Relaxed),
    ]
}

/// Element-wise saturating subtraction of per-kind counter arrays.
fn sub4(a: [u64; MEMO_KINDS], b: [u64; MEMO_KINDS]) -> [u64; MEMO_KINDS] {
    [
        a[0].saturating_sub(b[0]),
        a[1].saturating_sub(b[1]),
        a[2].saturating_sub(b[2]),
        a[3].saturating_sub(b[3]),
    ]
}

/// A point-in-time copy of [`KernelCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelSnapshot {
    /// Row visits inside counting loops.
    pub rows_scanned: u64,
    /// Hash-map entry operations (one per coalesced run reaching a sparse
    /// accumulator).
    pub hash_ops: u64,
    /// Dense flat-array increments (one per coalesced run reaching a dense
    /// accumulator).
    pub dense_ops: u64,
    /// Builds that ran on a dense accumulator.
    pub dense_builds: u64,
    /// Builds that fell back to a sparse (hashed) accumulator.
    pub sparse_builds: u64,
    /// Builds whose inner loop ran at a narrow (8/16-bit) code width.
    pub narrow_scans: u64,
    /// All-zero 64-bit selection words skipped by packed mask scans.
    pub packed_words_skipped: u64,
    /// Cells written by radix-partitioned sub-histogram merges.
    pub radix_merge_cells: u64,
    /// Cells the v1 full-keyspace merge discipline would have written for
    /// the same merge events (keyspace × merges).
    pub full_merge_cells: u64,
    /// Builds scanned at 8-bit width.
    pub builds_w8: u64,
    /// Builds scanned at 16-bit width.
    pub builds_w16: u64,
    /// Builds scanned at 32-bit width.
    pub builds_w32: u64,
    /// Builds scanned at 64-bit width.
    pub builds_w64: u64,
    /// Builds that needed the 128-bit row-scan fallback.
    pub builds_w128: u64,
    /// Memo-store hits, indexed by [`MemoKind`].
    pub memo_hits: [u64; MEMO_KINDS],
    /// Memo-store misses, indexed by [`MemoKind`].
    pub memo_misses: [u64; MEMO_KINDS],
    /// Values published into the memo store, indexed by [`MemoKind`].
    pub memo_inserts: [u64; MEMO_KINDS],
    /// Entries evicted by budget enforcement, indexed by [`MemoKind`].
    pub memo_evictions: [u64; MEMO_KINDS],
    /// Requests that blocked on another request's in-flight build.
    pub memo_coalesced_waits: u64,
}

impl KernelSnapshot {
    /// Total memo hits across all kinds.
    pub fn memo_hits_total(&self) -> u64 {
        self.memo_hits.iter().sum()
    }

    /// Total memo misses across all kinds.
    pub fn memo_misses_total(&self) -> u64 {
        self.memo_misses.iter().sum()
    }

    /// Total memo inserts across all kinds.
    pub fn memo_inserts_total(&self) -> u64 {
        self.memo_inserts.iter().sum()
    }

    /// Total memo evictions across all kinds.
    pub fn memo_evictions_total(&self) -> u64 {
        self.memo_evictions.iter().sum()
    }
}

impl KernelSnapshot {
    /// Counter movement since `earlier` (saturating, so a stale snapshot
    /// never underflows).
    pub fn delta(&self, earlier: &KernelSnapshot) -> KernelSnapshot {
        KernelSnapshot {
            rows_scanned: self.rows_scanned.saturating_sub(earlier.rows_scanned),
            hash_ops: self.hash_ops.saturating_sub(earlier.hash_ops),
            dense_ops: self.dense_ops.saturating_sub(earlier.dense_ops),
            dense_builds: self.dense_builds.saturating_sub(earlier.dense_builds),
            sparse_builds: self.sparse_builds.saturating_sub(earlier.sparse_builds),
            narrow_scans: self.narrow_scans.saturating_sub(earlier.narrow_scans),
            packed_words_skipped: self
                .packed_words_skipped
                .saturating_sub(earlier.packed_words_skipped),
            radix_merge_cells: self
                .radix_merge_cells
                .saturating_sub(earlier.radix_merge_cells),
            full_merge_cells: self
                .full_merge_cells
                .saturating_sub(earlier.full_merge_cells),
            builds_w8: self.builds_w8.saturating_sub(earlier.builds_w8),
            builds_w16: self.builds_w16.saturating_sub(earlier.builds_w16),
            builds_w32: self.builds_w32.saturating_sub(earlier.builds_w32),
            builds_w64: self.builds_w64.saturating_sub(earlier.builds_w64),
            builds_w128: self.builds_w128.saturating_sub(earlier.builds_w128),
            memo_hits: sub4(self.memo_hits, earlier.memo_hits),
            memo_misses: sub4(self.memo_misses, earlier.memo_misses),
            memo_inserts: sub4(self.memo_inserts, earlier.memo_inserts),
            memo_evictions: sub4(self.memo_evictions, earlier.memo_evictions),
            memo_coalesced_waits: self
                .memo_coalesced_waits
                .saturating_sub(earlier.memo_coalesced_waits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_delta() {
        let c = KernelCounters::default();
        let before = c.snapshot();
        c.record_build(100, 0, 100, true);
        c.record_build(50, 50, 0, false);
        let d = c.snapshot().delta(&before);
        assert_eq!(d.rows_scanned, 150);
        assert_eq!(d.hash_ops, 50);
        assert_eq!(d.dense_ops, 100);
        assert_eq!(d.dense_builds, 1);
        assert_eq!(d.sparse_builds, 1);
    }

    #[test]
    fn record_v2_counters() {
        let c = KernelCounters::default();
        let before = c.snapshot();
        c.record_scan_width(ScanWidth::W8);
        c.record_scan_width(ScanWidth::W16);
        c.record_scan_width(ScanWidth::W32);
        c.record_scan_width(ScanWidth::W64);
        c.record_scan_width(ScanWidth::W128);
        c.record_packed_words_skipped(7);
        c.record_merge(128, 4096);
        let d = c.snapshot().delta(&before);
        assert_eq!(d.narrow_scans, 2);
        assert_eq!(
            (
                d.builds_w8,
                d.builds_w16,
                d.builds_w32,
                d.builds_w64,
                d.builds_w128
            ),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(d.packed_words_skipped, 7);
        assert_eq!(d.radix_merge_cells, 128);
        assert_eq!(d.full_merge_cells, 4096);
    }

    #[test]
    fn width_selection_boundaries() {
        assert_eq!(ScanWidth::for_space(1), ScanWidth::W8);
        assert_eq!(ScanWidth::for_space(256), ScanWidth::W8);
        assert_eq!(ScanWidth::for_space(257), ScanWidth::W16);
        assert_eq!(ScanWidth::for_space(65536), ScanWidth::W16);
        assert_eq!(ScanWidth::for_space(65537), ScanWidth::W32);
        assert_eq!(ScanWidth::for_space(1 << 32), ScanWidth::W32);
        assert_eq!(ScanWidth::for_space((1 << 32) + 1), ScanWidth::W64);
        assert_eq!(ScanWidth::for_space(u64::MAX as u128 + 1), ScanWidth::W64);
        assert_eq!(ScanWidth::for_space(u64::MAX as u128 + 2), ScanWidth::W128);
        assert!(ScanWidth::W8.is_narrow());
        assert!(ScanWidth::W16.is_narrow());
        assert!(!ScanWidth::W32.is_narrow());
    }

    #[test]
    fn record_memo_counters() {
        let c = KernelCounters::default();
        let before = c.snapshot();
        c.record_memo_hit(MemoKind::Contingency);
        c.record_memo_hit(MemoKind::Contingency);
        c.record_memo_miss(MemoKind::Selection);
        c.record_memo_insert(MemoKind::Selection);
        c.record_memo_evictions(MemoKind::CmiTerm, 3);
        c.record_memo_hit(MemoKind::Extraction);
        c.record_memo_coalesced_wait();
        let d = c.snapshot().delta(&before);
        assert_eq!(d.memo_hits[MemoKind::Contingency as usize], 2);
        assert_eq!(d.memo_hits[MemoKind::Extraction as usize], 1);
        assert_eq!(d.memo_hits_total(), 3);
        assert_eq!(d.memo_misses_total(), 1);
        assert_eq!(d.memo_inserts[MemoKind::Selection as usize], 1);
        assert_eq!(d.memo_evictions[MemoKind::CmiTerm as usize], 3);
        assert_eq!(d.memo_evictions_total(), 3);
        assert_eq!(d.memo_coalesced_waits, 1);
    }

    #[test]
    fn memo_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            MemoKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), MEMO_KINDS);
    }

    #[test]
    fn delta_saturates() {
        let a = KernelSnapshot {
            rows_scanned: 5,
            ..KernelSnapshot::default()
        };
        let b = KernelSnapshot {
            rows_scanned: 9,
            ..KernelSnapshot::default()
        };
        assert_eq!(a.delta(&b).rows_scanned, 0);
    }

    #[test]
    fn mode_roundtrip() {
        // Default is Auto; Legacy round-trips. Restore Auto so parallel
        // tests in this binary observe the default.
        assert_eq!(mode(), KernelMode::Auto);
        set_mode(KernelMode::Legacy);
        assert_eq!(mode(), KernelMode::Legacy);
        set_mode(KernelMode::Auto);
        assert_eq!(mode(), KernelMode::Auto);
    }
}
