//! Counting-kernel instrumentation and dispatch mode.
//!
//! Every score NEXUS produces reduces to building weighted contingency /
//! joint-count tables, so the per-row *accumulator operations* of those
//! builds — not wall-clock, which varies with the machine — are the
//! system's portable cost model. This module holds:
//!
//! * [`KernelCounters`] — process-global atomic counters bumped (in batch,
//!   once per build or chunk, never per row) by the counting kernels in
//!   this crate and by the engine's contingency builds in `nexus-core`;
//! * [`KernelSnapshot`] — a copyable snapshot with [`delta`] arithmetic so
//!   callers can attribute counter movement to one pipeline run;
//! * [`KernelMode`] — the process-global kernel dispatch override used by
//!   the bench harness to compare the dense/fused kernels against the
//!   legacy hashed row-scan on identical inputs.
//!
//! Counters are monotone and `Relaxed`: they are diagnostics, never inputs
//! to any estimate, so they cannot perturb NEXUS's bit-identical-output
//! guarantee.
//!
//! [`delta`]: KernelSnapshot::delta

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// How counting kernels dispatch between the dense/fused fast paths and
/// the legacy hashed row-scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Dense flat-array kernels over precomputed selection vectors where
    /// the key space fits the budget; sparse (hashed) fallback otherwise.
    #[default]
    Auto,
    /// The pre-kernel behavior: per-row masked scans with a hash-map entry
    /// operation per surviving row. Exists so the bench harness and the
    /// equivalence suite can compare both paths on identical inputs.
    Legacy,
}

/// Process-global dispatch mode (see [`set_mode`]).
static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global [`KernelMode`].
///
/// Intended for single-controller processes (the bench harness); library
/// code and tests that need a specific mode should pass it explicitly
/// (e.g. `Engine::with_kernel`) instead of toggling global state.
pub fn set_mode(mode: KernelMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current process-global [`KernelMode`].
pub fn mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Legacy,
        _ => KernelMode::Auto,
    }
}

/// Process-global counters for every counting-kernel invocation.
///
/// All counters are cumulative over the process lifetime; use
/// [`KernelCounters::snapshot`] + [`KernelSnapshot::delta`] to scope them
/// to one region.
#[derive(Debug, Default)]
pub struct KernelCounters {
    rows_scanned: AtomicU64,
    hash_ops: AtomicU64,
    dense_ops: AtomicU64,
    dense_builds: AtomicU64,
    sparse_builds: AtomicU64,
}

/// The global counter instance.
static COUNTERS: KernelCounters = KernelCounters {
    rows_scanned: AtomicU64::new(0),
    hash_ops: AtomicU64::new(0),
    dense_ops: AtomicU64::new(0),
    dense_builds: AtomicU64::new(0),
    sparse_builds: AtomicU64::new(0),
};

/// The process-global [`KernelCounters`].
pub fn counters() -> &'static KernelCounters {
    &COUNTERS
}

impl KernelCounters {
    /// Records one finished counting build: `rows` row visits, `hash_ops`
    /// hash-map entry operations, `dense_ops` flat-array increments, and
    /// whether the build used a dense accumulator.
    pub fn record_build(&self, rows: u64, hash_ops: u64, dense_ops: u64, dense: bool) {
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        self.hash_ops.fetch_add(hash_ops, Ordering::Relaxed);
        self.dense_ops.fetch_add(dense_ops, Ordering::Relaxed);
        if dense {
            self.dense_builds.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sparse_builds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy of the counters (each counter is read
    /// atomically; the set is not a transaction, which is fine for
    /// monotone diagnostics).
    pub fn snapshot(&self) -> KernelSnapshot {
        KernelSnapshot {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            hash_ops: self.hash_ops.load(Ordering::Relaxed),
            dense_ops: self.dense_ops.load(Ordering::Relaxed),
            dense_builds: self.dense_builds.load(Ordering::Relaxed),
            sparse_builds: self.sparse_builds.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`KernelCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelSnapshot {
    /// Row visits inside counting loops.
    pub rows_scanned: u64,
    /// Hash-map entry operations (one per row reaching a sparse
    /// accumulator).
    pub hash_ops: u64,
    /// Dense flat-array increments (one per row reaching a dense
    /// accumulator).
    pub dense_ops: u64,
    /// Builds that ran on a dense accumulator.
    pub dense_builds: u64,
    /// Builds that fell back to a sparse (hashed) accumulator.
    pub sparse_builds: u64,
}

impl KernelSnapshot {
    /// Counter movement since `earlier` (saturating, so a stale snapshot
    /// never underflows).
    pub fn delta(&self, earlier: &KernelSnapshot) -> KernelSnapshot {
        KernelSnapshot {
            rows_scanned: self.rows_scanned.saturating_sub(earlier.rows_scanned),
            hash_ops: self.hash_ops.saturating_sub(earlier.hash_ops),
            dense_ops: self.dense_ops.saturating_sub(earlier.dense_ops),
            dense_builds: self.dense_builds.saturating_sub(earlier.dense_builds),
            sparse_builds: self.sparse_builds.saturating_sub(earlier.sparse_builds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_delta() {
        let c = KernelCounters::default();
        let before = c.snapshot();
        c.record_build(100, 0, 100, true);
        c.record_build(50, 50, 0, false);
        let d = c.snapshot().delta(&before);
        assert_eq!(d.rows_scanned, 150);
        assert_eq!(d.hash_ops, 50);
        assert_eq!(d.dense_ops, 100);
        assert_eq!(d.dense_builds, 1);
        assert_eq!(d.sparse_builds, 1);
    }

    #[test]
    fn delta_saturates() {
        let a = KernelSnapshot {
            rows_scanned: 5,
            ..KernelSnapshot::default()
        };
        let b = KernelSnapshot {
            rows_scanned: 9,
            ..KernelSnapshot::default()
        };
        assert_eq!(a.delta(&b).rows_scanned, 0);
    }

    #[test]
    fn mode_roundtrip() {
        // Default is Auto; Legacy round-trips. Restore Auto so parallel
        // tests in this binary observe the default.
        assert_eq!(mode(), KernelMode::Auto);
        set_mode(KernelMode::Legacy);
        assert_eq!(mode(), KernelMode::Legacy);
        set_mode(KernelMode::Auto);
        assert_eq!(mode(), KernelMode::Auto);
    }
}
