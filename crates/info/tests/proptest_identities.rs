//! Property-based tests of information-theoretic identities on the plug-in
//! estimators. These are the invariants every downstream algorithm relies
//! on, so they get the widest random coverage.

use nexus_info::{InfoContext, JointCounts};
use nexus_table::{Bitmap, Codes};
use proptest::prelude::*;

fn codes_strategy(max_card: u32, len: usize) -> impl Strategy<Value = Codes> {
    (2..=max_card).prop_flat_map(move |card| {
        proptest::collection::vec(0..card, len).prop_map(move |codes| Codes {
            codes,
            cardinality: card,
            validity: None,
        })
    })
}

fn codes_with_nulls(max_card: u32, len: usize) -> impl Strategy<Value = Codes> {
    (
        codes_strategy(max_card, len),
        proptest::collection::vec(prop::bool::weighted(0.85), len),
    )
        .prop_map(|(mut c, valid)| {
            let bm: Bitmap = valid.into_iter().collect();
            c.validity = Some(bm);
            c
        })
}

const N: usize = 60;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn entropy_nonnegative_and_bounded(x in codes_strategy(6, N)) {
        let ctx = InfoContext::default();
        let h = ctx.entropy(&x);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (x.cardinality as f64).log2() + 1e-9);
    }

    #[test]
    fn mi_symmetric_and_nonnegative(x in codes_strategy(5, N), y in codes_strategy(5, N)) {
        let ctx = InfoContext::default();
        let ixy = ctx.mutual_information(&x, &y);
        let iyx = ctx.mutual_information(&y, &x);
        prop_assert!(ixy >= 0.0);
        prop_assert!((ixy - iyx).abs() < 1e-9);
    }

    #[test]
    fn mi_bounded_by_marginal_entropies(x in codes_strategy(5, N), y in codes_strategy(5, N)) {
        let ctx = InfoContext::default();
        let i = ctx.mutual_information(&x, &y);
        prop_assert!(i <= ctx.entropy(&x) + 1e-9);
        prop_assert!(i <= ctx.entropy(&y) + 1e-9);
    }

    #[test]
    fn chain_rule(x in codes_strategy(4, N), y in codes_strategy(4, N)) {
        let ctx = InfoContext::default();
        let lhs = ctx.joint_entropy(&[&x, &y]);
        let rhs = ctx.entropy(&x) + ctx.conditional_entropy(&y, &[&x]);
        prop_assert!((lhs - rhs).abs() < 1e-9, "H(X,Y)={lhs} H(X)+H(Y|X)={rhs}");
    }

    #[test]
    fn mi_as_entropy_difference(x in codes_strategy(4, N), y in codes_strategy(4, N)) {
        // I(X;Y) = H(X) - H(X|Y)
        let ctx = InfoContext::default();
        let i = ctx.mutual_information(&x, &y);
        let d = ctx.entropy(&x) - ctx.conditional_entropy(&x, &[&y]);
        prop_assert!((i - d).abs() < 1e-9);
    }

    #[test]
    fn cmi_nonnegative(
        x in codes_strategy(4, N),
        y in codes_strategy(4, N),
        z in codes_strategy(3, N),
    ) {
        let ctx = InfoContext::default();
        prop_assert!(ctx.cmi(&x, &y, &[&z]) >= 0.0);
    }

    #[test]
    fn cmi_chain_rule(
        x in codes_strategy(3, N),
        y in codes_strategy(3, N),
        z in codes_strategy(3, N),
    ) {
        // I(X; Y,Z) = I(X;Z) + I(X;Y|Z). Estimate I(X;Y,Z) via entropies.
        let ctx = InfoContext::default();
        let h_x = ctx.entropy(&x);
        let h_x_given_yz = ctx.conditional_entropy(&x, &[&y, &z]);
        let i_x_yz = h_x - h_x_given_yz;
        let rhs = ctx.mutual_information(&x, &z) + ctx.cmi(&x, &y, &[&z]);
        prop_assert!((i_x_yz - rhs).abs() < 1e-9, "lhs={i_x_yz} rhs={rhs}");
    }

    #[test]
    fn self_mi_is_entropy(x in codes_strategy(6, N)) {
        let ctx = InfoContext::default();
        prop_assert!((ctx.mutual_information(&x, &x) - ctx.entropy(&x)).abs() < 1e-9);
    }

    #[test]
    fn conditioning_on_self_zeroes_cmi(x in codes_strategy(4, N), y in codes_strategy(4, N)) {
        let ctx = InfoContext::default();
        prop_assert!(ctx.cmi(&x, &y, &[&x]).abs() < 1e-9);
    }

    #[test]
    fn null_rows_equivalent_to_mask(x in codes_with_nulls(4, N), y in codes_strategy(4, N)) {
        // Estimating with validity-nulls must equal estimating the valid
        // subset via an explicit mask on fully-valid codes.
        let ctx = InfoContext::default();
        let with_nulls = ctx.mutual_information(&x, &y);

        let mask = x.validity.clone().unwrap();
        let stripped = Codes { codes: x.codes.clone(), cardinality: x.cardinality, validity: None };
        let masked_ctx = InfoContext::masked(&mask);
        let via_mask = masked_ctx.mutual_information(&stripped, &y);
        prop_assert!((with_nulls - via_mask).abs() < 1e-9);
    }

    #[test]
    fn uniform_weights_match_unweighted(
        x in codes_strategy(4, N),
        y in codes_strategy(4, N),
        w in 0.1f64..10.0,
    ) {
        let ctx = InfoContext::default();
        let plain = ctx.mutual_information(&x, &y);
        let weights = vec![w; N];
        let wctx = InfoContext::weighted(&weights);
        let weighted = wctx.mutual_information(&x, &y);
        prop_assert!((plain - weighted).abs() < 1e-9);
    }

    #[test]
    fn marginal_entropy_consistent(
        x in codes_strategy(3, N),
        y in codes_strategy(3, N),
        z in codes_strategy(3, N),
    ) {
        let joint = JointCounts::count(&[&x, &y, &z], None, None);
        let direct_xz = JointCounts::count(&[&x, &z], None, None).entropy();
        prop_assert!((joint.marginal_entropy(&[0, 2]) - direct_xz).abs() < 1e-9);
    }
}
