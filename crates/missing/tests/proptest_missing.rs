//! Property-based tests for the missing-data machinery.

use nexus_missing::{
    impute_mean, impute_mode, inject_missing, ipw_weights, FeatureMatrix, IpwOptions,
    LogisticOptions, LogisticRegression, MissingInjection,
};
use nexus_table::{Codes, Column};
use proptest::prelude::*;

fn codes_strategy(card: u32, len: usize) -> impl Strategy<Value = Codes> {
    proptest::collection::vec(0..card, len).prop_map(move |codes| Codes {
        codes,
        cardinality: card,
        validity: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn logistic_probabilities_in_unit_interval(
        x in codes_strategy(4, 60),
        y in proptest::collection::vec(prop::bool::ANY, 60),
    ) {
        let m = FeatureMatrix::one_hot(&[&x]);
        let labels: Vec<f64> = y.iter().map(|&b| b as u8 as f64).collect();
        let model = LogisticRegression::fit(&m, &labels, &LogisticOptions::default());
        for p in model.predict_all(&m) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn ipw_weights_nonnegative_and_mean_one(
        cov in codes_strategy(3, 80),
        missing_bits in proptest::collection::vec(prop::bool::weighted(0.3), 80),
    ) {
        prop_assume!(missing_bits.iter().filter(|&&b| !b).count() >= 2);
        let values: Vec<Option<f64>> = missing_bits
            .iter()
            .map(|&m| if m { None } else { Some(1.0) })
            .collect();
        let col = Column::from_opt_f64(values);
        let w = ipw_weights(&col, &[&cov], &IpwOptions::default());
        prop_assert_eq!(w.len(), 80);
        for (i, &wi) in w.iter().enumerate() {
            prop_assert!(wi >= 0.0);
            prop_assert_eq!(wi == 0.0, col.is_null(i));
        }
        let complete: Vec<f64> = w.iter().copied().filter(|&x| x > 0.0).collect();
        let mean = complete.iter().sum::<f64>() / complete.len() as f64;
        prop_assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_imputation_preserves_observed(
        values in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 1..80),
    ) {
        let col = Column::from_opt_f64(values.clone());
        let filled = impute_mean(&col);
        let any_valid = values.iter().any(|v| v.is_some());
        if any_valid {
            prop_assert_eq!(filled.null_count(), 0);
        }
        for (i, v) in values.iter().enumerate() {
            if let Some(x) = v {
                prop_assert_eq!(filled.f64_at(i), Some(*x));
            }
        }
    }

    #[test]
    fn mode_imputation_uses_existing_value(
        values in proptest::collection::vec(proptest::option::of("[abc]"), 1..60),
    ) {
        let opts: Vec<Option<&str>> = values.iter().map(|v| v.as_deref()).collect();
        let col = Column::from_opt_strs(&opts);
        let filled = impute_mode(&col);
        let observed: std::collections::HashSet<&str> =
            values.iter().flatten().map(|s| s.as_str()).collect();
        if !observed.is_empty() {
            for i in 0..filled.len() {
                let v = filled.str_at(i).unwrap();
                prop_assert!(observed.contains(v));
            }
        }
    }

    #[test]
    fn random_injection_hits_requested_fraction(
        n in 10usize..200,
        fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let col = Column::from_f64((0..n).map(|i| i as f64).collect());
        let injected = inject_missing(&col, MissingInjection::Random { fraction, seed });
        let expect = ((n as f64) * fraction).round() as usize;
        prop_assert_eq!(injected.null_count(), expect);
    }

    #[test]
    fn biased_injection_removes_top_values(
        values in proptest::collection::vec(-1000.0f64..1000.0, 4..100),
        fraction in 0.1f64..0.9,
    ) {
        let col = Column::from_f64(values.clone());
        let injected = inject_missing(&col, MissingInjection::TopValues { fraction });
        // Every remaining value is <= every removed value.
        let removed_min = values
            .iter()
            .enumerate()
            .filter(|(i, _)| injected.is_null(*i))
            .map(|(_, &v)| v)
            .fold(f64::INFINITY, f64::min);
        for (i, &v) in values.iter().enumerate() {
            if !injected.is_null(i) {
                prop_assert!(v <= removed_min + 1e-9);
            }
        }
    }
}
