//! Selection-bias detection for extracted attributes (Section 3.2).
//!
//! For an extracted attribute `E` with missing values, `R_E` indicates which
//! rows were successfully extracted. Propositions 3.2/3.3 give sufficient
//! recoverability conditions; when the *observable* implications of those
//! conditions fail — the missingness indicator is associated with the
//! outcome (given the exposure) or with other attributes — complete-case
//! estimates are biased and IPW weights are required.

use nexus_info::{ci_test, CiTestOptions, InfoContext};
use nexus_table::{Bitmap, Codes, Column};

/// Builds the selection indicator `R_E` of a column: code 1 where the value
/// is present, 0 where missing. Always fully valid.
pub fn selection_indicator(col: &Column) -> Codes {
    let codes: Vec<u32> = (0..col.len()).map(|i| (!col.is_null(i)) as u32).collect();
    Codes {
        codes,
        cardinality: 2,
        validity: None,
    }
}

/// Selection indicator straight from a validity-style bitmap
/// (1 where the bit is set).
pub fn indicator_from_bitmap(present: &Bitmap) -> Codes {
    Codes {
        codes: present.iter().map(|b| b as u32).collect(),
        cardinality: 2,
        validity: None,
    }
}

/// The verdict of selection-bias detection for one extracted attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasReport {
    /// `I(R_E; O | C)` — association of missingness with the outcome.
    pub mi_with_outcome: f64,
    /// `I(R_E; T | C)` — association of missingness with the exposure.
    pub mi_with_exposure: f64,
    /// Fraction of missing rows in the attribute (within the context).
    pub missing_fraction: f64,
    /// Whether complete-case analysis is biased and IPW weights are needed.
    pub biased: bool,
}

/// Options for bias detection.
#[derive(Debug, Clone, Copy)]
pub struct BiasDetectOptions {
    /// CI-test configuration used on the indicator.
    pub ci: CiTestOptions,
    /// Attributes missing less than this fraction are never flagged (a few
    /// missing rows cannot bias the estimate materially).
    pub min_missing_fraction: f64,
}

impl Default for BiasDetectOptions {
    fn default() -> Self {
        BiasDetectOptions {
            ci: CiTestOptions::default(),
            min_missing_fraction: 0.01,
        }
    }
}

/// Detects selection bias for attribute `E` against outcome `O` and
/// exposure `T` within the query context.
///
/// The recoverability conditions of Prop. 3.2 imply, observably, that
/// `R_E ⫫ O | C` and `R_E ⫫ O | T, C`; we test both (the second catches
/// missingness channels that only open within exposure groups) plus
/// `R_E ⫫ T | C` as the Prop. 3.3 analogue for redundancy estimates.
pub fn detect_selection_bias(
    ctx: &InfoContext<'_>,
    e_col: &Column,
    o: &Codes,
    t: &Codes,
    options: &BiasDetectOptions,
) -> BiasReport {
    let r = selection_indicator(e_col);
    let n_ctx = match ctx.mask {
        Some(m) => m.count_ones(),
        None => e_col.len(),
    };
    let missing = match ctx.mask {
        Some(m) => m.iter_ones().filter(|&i| e_col.is_null(i)).count(),
        None => e_col.null_count(),
    };
    let missing_fraction = if n_ctx == 0 {
        0.0
    } else {
        missing as f64 / n_ctx as f64
    };

    let mi_o = ctx.mutual_information(&r, o);
    let mi_t = ctx.mutual_information(&r, t);

    if missing_fraction < options.min_missing_fraction || missing == n_ctx {
        return BiasReport {
            mi_with_outcome: mi_o,
            mi_with_exposure: mi_t,
            missing_fraction,
            biased: false,
        };
    }

    // Three tests share the verdict via OR, so each runs at alpha/3
    // (Bonferroni) — otherwise genuinely MCAR attributes get flagged at
    // nearly 3x the nominal false-positive rate.
    let mut ci = options.ci;
    ci.alpha /= 3.0;
    let dep_o = !ci_test(ctx, &r, o, &[], &ci).independent;
    let dep_o_given_t = !ci_test(ctx, &r, o, &[t], &ci).independent;
    let dep_t = !ci_test(ctx, &r, t, &[], &ci).independent;

    BiasReport {
        mi_with_outcome: mi_o,
        mi_with_exposure: mi_t,
        missing_fraction,
        biased: dep_o || dep_o_given_t || dep_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_table::Column;

    fn codes(values: &[u32], card: u32) -> Codes {
        Codes {
            codes: values.to_vec(),
            cardinality: card,
            validity: None,
        }
    }

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u32
        }
    }

    #[test]
    fn indicator_tracks_nulls() {
        let col = Column::from_opt_f64(vec![Some(1.0), None, Some(3.0)]);
        let r = selection_indicator(&col);
        assert_eq!(r.codes, vec![1, 0, 1]);
        assert_eq!(r.cardinality, 2);
    }

    #[test]
    fn indicator_from_bitmap_matches() {
        let bm: Bitmap = vec![true, false, true].into_iter().collect();
        let r = indicator_from_bitmap(&bm);
        assert_eq!(r.codes, vec![1, 0, 1]);
    }

    #[test]
    fn mcar_missingness_not_flagged() {
        let mut next = lcg(5);
        let n = 1000;
        let o = codes(&(0..n).map(|_| next() % 4).collect::<Vec<_>>(), 4);
        let t = codes(&(0..n).map(|_| next() % 3).collect::<Vec<_>>(), 3);
        // 30% missing completely at random.
        let values: Vec<Option<f64>> = (0..n)
            .map(|_| if next() % 10 < 3 { None } else { Some(1.0) })
            .collect();
        let col = Column::from_opt_f64(values);
        let report = detect_selection_bias(
            &InfoContext::default(),
            &col,
            &o,
            &t,
            &BiasDetectOptions::default(),
        );
        assert!(!report.biased, "MCAR flagged: {report:?}");
        assert!(report.missing_fraction > 0.2);
    }

    #[test]
    fn outcome_dependent_missingness_flagged() {
        let mut next = lcg(9);
        let n = 1000;
        let ov: Vec<u32> = (0..n).map(|_| next() % 4).collect();
        let o = codes(&ov, 4);
        let t = codes(&(0..n).map(|_| next() % 3).collect::<Vec<_>>(), 3);
        // Missing mostly when the outcome is high (codes 2,3): MNAR.
        let values: Vec<Option<f64>> = ov
            .iter()
            .map(|&oc| {
                if oc >= 2 && next() % 10 < 8 {
                    None
                } else {
                    Some(1.0)
                }
            })
            .collect();
        let col = Column::from_opt_f64(values);
        let report = detect_selection_bias(
            &InfoContext::default(),
            &col,
            &o,
            &t,
            &BiasDetectOptions::default(),
        );
        assert!(report.biased, "MNAR not flagged: {report:?}");
        assert!(report.mi_with_outcome > 0.05);
    }

    #[test]
    fn tiny_missing_fraction_never_flagged() {
        let n = 500;
        let o = codes(&(0..n).map(|i| (i % 4) as u32).collect::<Vec<_>>(), 4);
        let t = codes(&(0..n).map(|i| (i % 3) as u32).collect::<Vec<_>>(), 3);
        // One missing value, perfectly aligned with high outcome.
        let values: Vec<Option<f64>> = (0..n)
            .map(|i| if i == 3 { None } else { Some(1.0) })
            .collect();
        let col = Column::from_opt_f64(values);
        let report = detect_selection_bias(
            &InfoContext::default(),
            &col,
            &o,
            &t,
            &BiasDetectOptions::default(),
        );
        assert!(!report.biased);
    }

    #[test]
    fn fully_missing_attribute_not_flagged() {
        let n = 100;
        let o = codes(&vec![0; n], 1);
        let t = codes(&vec![0; n], 1);
        let col = Column::from_opt_f64(vec![None; n]);
        let report = detect_selection_bias(
            &InfoContext::default(),
            &col,
            &o,
            &t,
            &BiasDetectOptions::default(),
        );
        assert!(!report.biased);
        assert_eq!(report.missing_fraction, 1.0);
    }
}
