//! Imputation baselines and missing-value injection.
//!
//! The paper's robustness experiment (Figure 3) compares IPW-based NEXUS
//! against mean imputation while *injecting* missing values either at random
//! (MCAR) or biased (removing the top-x values, MNAR). Both the imputers and
//! the injectors live here.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nexus_table::{Column, ColumnData, Value};

/// Fills numeric nulls with the column mean (a no-op on a fully-null or
/// non-numeric column).
pub fn impute_mean(col: &Column) -> Column {
    if !col.dtype().is_numeric() {
        return impute_mode(col);
    }
    let Some(mean) = col.mean() else {
        return col.clone();
    };
    let values: Vec<Option<f64>> = (0..col.len())
        .map(|i| Some(col.f64_at(i).unwrap_or(mean)))
        .collect();
    Column::from_opt_f64(values)
}

/// Fills categorical nulls with the most frequent value.
pub fn impute_mode(col: &Column) -> Column {
    match col.data() {
        ColumnData::Utf8(arr) => {
            let mut counts = vec![0usize; arr.dict().len()];
            for i in 0..col.len() {
                if !col.is_null(i) {
                    counts[arr.codes()[i] as usize] += 1;
                }
            }
            let Some((mode_code, _)) = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .filter(|(_, &c)| c > 0)
            else {
                return col.clone();
            };
            let mode = arr.dict()[mode_code].clone();
            let values: Vec<Option<&str>> = (0..col.len())
                .map(|i| {
                    Some(if col.is_null(i) {
                        mode.as_str()
                    } else {
                        arr.get(i)
                    })
                })
                .collect();
            Column::from_opt_strs(&values)
        }
        _ => {
            // Numeric / bool columns fall back to mean (bool -> majority via
            // mean-threshold).
            if col.dtype().is_numeric() {
                impute_mean(col)
            } else {
                let ones = (0..col.len())
                    .filter(|&i| !col.is_null(i) && col.value(i) == Value::Bool(true))
                    .count();
                let zeros = (0..col.len())
                    .filter(|&i| !col.is_null(i) && col.value(i) == Value::Bool(false))
                    .count();
                if ones + zeros == 0 {
                    return col.clone();
                }
                let majority = ones >= zeros;
                let values: Vec<Option<bool>> = (0..col.len())
                    .map(|i| {
                        Some(if col.is_null(i) {
                            majority
                        } else {
                            col.value(i).as_bool().expect("bool column")
                        })
                    })
                    .collect();
                Column::from_opt_bools(values)
            }
        }
    }
}

/// How to inject missing values for robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MissingInjection {
    /// Missing completely at random: each valid value is removed with the
    /// given probability.
    Random {
        /// Fraction of values to remove.
        fraction: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Biased (MNAR) removal: the top-`fraction` *highest* values of a
    /// numeric column are removed (the paper's "biased removal").
    TopValues {
        /// Fraction of values to remove, from the top.
        fraction: f64,
    },
}

/// Returns a copy of `col` with additional missing values injected.
pub fn inject_missing(col: &Column, injection: MissingInjection) -> Column {
    let mut out = col.clone();
    match injection {
        MissingInjection::Random { fraction, seed } => {
            let valid: Vec<usize> = (0..col.len()).filter(|&i| !col.is_null(i)).collect();
            let k = ((valid.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pool = valid;
            pool.shuffle(&mut rng);
            for &i in pool.iter().take(k) {
                out.set_null(i);
            }
        }
        MissingInjection::TopValues { fraction } => {
            let mut valid: Vec<(usize, f64)> = (0..col.len())
                .filter_map(|i| col.f64_at(i).map(|v| (i, v)))
                .collect();
            let k = ((valid.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
            valid.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite values"));
            for (i, _) in valid.into_iter().take(k) {
                out.set_null(i);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_imputation() {
        let col = Column::from_opt_f64(vec![Some(1.0), None, Some(3.0)]);
        let filled = impute_mean(&col);
        assert_eq!(filled.null_count(), 0);
        assert_eq!(filled.f64_at(1), Some(2.0));
        assert_eq!(filled.f64_at(0), Some(1.0));
    }

    #[test]
    fn mean_imputation_all_null_noop() {
        let col = Column::from_opt_f64(vec![None, None]);
        let filled = impute_mean(&col);
        assert_eq!(filled.null_count(), 2);
    }

    #[test]
    fn mode_imputation() {
        let col = Column::from_opt_strs(&[Some("a"), Some("b"), Some("a"), None]);
        let filled = impute_mode(&col);
        assert_eq!(filled.null_count(), 0);
        assert_eq!(filled.str_at(3), Some("a"));
    }

    #[test]
    fn mode_imputation_bool() {
        let col = Column::from_opt_bools(vec![Some(true), Some(true), Some(false), None]);
        let filled = impute_mode(&col);
        assert_eq!(filled.value(3), Value::Bool(true));
    }

    #[test]
    fn string_column_through_mean_imputer_uses_mode() {
        let col = Column::from_opt_strs(&[Some("x"), None]);
        let filled = impute_mean(&col);
        assert_eq!(filled.str_at(1), Some("x"));
    }

    #[test]
    fn random_injection_fraction() {
        let col = Column::from_f64((0..1000).map(|i| i as f64).collect());
        let injected = inject_missing(
            &col,
            MissingInjection::Random {
                fraction: 0.3,
                seed: 42,
            },
        );
        assert_eq!(injected.null_count(), 300);
        // Deterministic given the seed.
        let again = inject_missing(
            &col,
            MissingInjection::Random {
                fraction: 0.3,
                seed: 42,
            },
        );
        for i in 0..1000 {
            assert_eq!(injected.is_null(i), again.is_null(i));
        }
    }

    #[test]
    fn top_value_injection_removes_highest() {
        let col = Column::from_f64(vec![5.0, 1.0, 9.0, 3.0, 7.0]);
        let injected = inject_missing(&col, MissingInjection::TopValues { fraction: 0.4 });
        assert_eq!(injected.null_count(), 2);
        assert!(injected.is_null(2)); // 9.0
        assert!(injected.is_null(4)); // 7.0
        assert!(!injected.is_null(1));
    }

    #[test]
    fn injection_preserves_existing_nulls() {
        let col = Column::from_opt_f64(vec![None, Some(1.0), Some(2.0)]);
        let injected = inject_missing(&col, MissingInjection::TopValues { fraction: 0.5 });
        assert!(injected.is_null(0));
        assert!(injected.is_null(2)); // top of the 2 valid values
        assert_eq!(injected.null_count(), 2);
    }

    #[test]
    fn zero_fraction_is_noop() {
        let col = Column::from_f64(vec![1.0, 2.0]);
        let injected = inject_missing(
            &col,
            MissingInjection::Random {
                fraction: 0.0,
                seed: 1,
            },
        );
        assert_eq!(injected.null_count(), 0);
    }
}
