//! Inverse Probability Weighting (Section 3.2).
//!
//! When selection bias is detected for an extracted attribute `E`, the
//! estimators restrict to complete cases but weight each by
//! `W(x) = P(R_E = 1) / P(R_E = 1 | X = x)`, where `X` are fully observed
//! base-table covariates and the conditional is a logistic-regression model
//! fitted at preprocessing. This up-weights complete cases from strata that
//! are under-observed, undoing the selection distortion.

use nexus_table::{Codes, Column};

use crate::logistic::{FeatureMatrix, LogisticOptions, LogisticRegression};
use crate::selection::selection_indicator;

/// Options for weight estimation.
#[derive(Debug, Clone, Copy)]
pub struct IpwOptions {
    /// Logistic-regression hyperparameters.
    pub logistic: LogisticOptions,
    /// Probabilities are clipped to `[clip, 1]` before inversion to bound
    /// the weights (standard IPW practice).
    pub clip: f64,
}

impl Default for IpwOptions {
    fn default() -> Self {
        IpwOptions {
            logistic: LogisticOptions::default(),
            clip: 0.02,
        }
    }
}

/// A fitted selection model for one extracted attribute.
#[derive(Debug)]
pub struct SelectionModel {
    model: LogisticRegression,
    marginal: f64,
    clip: f64,
}

impl SelectionModel {
    /// Fits `P(R_E = 1 | X)` from the covariates.
    ///
    /// `covariates` must be fully observed (base-table attributes); rows
    /// where a covariate is null contribute all-zero feature rows.
    pub fn fit(e_col: &Column, covariates: &[&Codes], options: &IpwOptions) -> SelectionModel {
        let r = selection_indicator(e_col);
        let y: Vec<f64> = r.codes.iter().map(|&c| c as f64).collect();
        let x = FeatureMatrix::one_hot(covariates);
        let model = LogisticRegression::fit(&x, &y, &options.logistic);
        let marginal = if y.is_empty() {
            1.0
        } else {
            y.iter().sum::<f64>() / y.len() as f64
        };
        SelectionModel {
            model,
            marginal,
            clip: options.clip,
        }
    }

    /// Computes per-row IPW weights: `P(R=1)/P(R=1|X)` on complete cases and
    /// `0` on missing rows. Weights are normalized to mean 1 over complete
    /// cases so weighted totals remain comparable to unweighted ones.
    pub fn weights(&self, e_col: &Column, covariates: &[&Codes]) -> Vec<f64> {
        let x = FeatureMatrix::one_hot(covariates);
        let probs = self.model.predict_all(&x);
        let mut w: Vec<f64> = (0..e_col.len())
            .map(|i| {
                if e_col.is_null(i) {
                    0.0
                } else {
                    self.marginal / probs[i].max(self.clip)
                }
            })
            .collect();
        let complete: usize = w.iter().filter(|&&x| x > 0.0).count();
        if complete > 0 {
            let mean = w.iter().sum::<f64>() / complete as f64;
            if mean > 0.0 {
                for x in &mut w {
                    *x /= mean;
                }
            }
        }
        w
    }
}

/// Convenience: fit-and-weight in one call.
pub fn ipw_weights(e_col: &Column, covariates: &[&Codes], options: &IpwOptions) -> Vec<f64> {
    SelectionModel::fit(e_col, covariates, options).weights(e_col, covariates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_info::InfoContext;

    fn codes(values: &[u32], card: u32) -> Codes {
        Codes {
            codes: values.to_vec(),
            cardinality: card,
            validity: None,
        }
    }

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as u32
        }
    }

    #[test]
    fn missing_rows_get_zero_weight() {
        let e = Column::from_opt_f64(vec![Some(1.0), None, Some(2.0), None]);
        let cov = codes(&[0, 0, 1, 1], 2);
        let w = ipw_weights(&e, &[&cov], &IpwOptions::default());
        assert_eq!(w[1], 0.0);
        assert_eq!(w[3], 0.0);
        assert!(w[0] > 0.0 && w[2] > 0.0);
    }

    #[test]
    fn weights_normalized_to_mean_one() {
        let mut next = lcg(3);
        let n = 400;
        let cov_v: Vec<u32> = (0..n).map(|_| next() % 3).collect();
        let e_vals: Vec<Option<f64>> = cov_v
            .iter()
            .map(|&c| {
                // Stratum 0 heavily under-observed.
                if c == 0 && next() % 10 < 7 {
                    None
                } else {
                    Some(1.0)
                }
            })
            .collect();
        let e = Column::from_opt_f64(e_vals);
        let cov = codes(&cov_v, 3);
        let w = ipw_weights(&e, &[&cov], &IpwOptions::default());
        let complete: Vec<f64> = w.iter().copied().filter(|&x| x > 0.0).collect();
        let mean = complete.iter().sum::<f64>() / complete.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn underobserved_strata_upweighted() {
        let mut next = lcg(7);
        let n = 600;
        let cov_v: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let e_vals: Vec<Option<f64>> = cov_v
            .iter()
            .map(|&c| {
                if c == 0 && next() % 10 < 6 {
                    None // stratum 0: ~40% observed
                } else {
                    Some(1.0) // stratum 1: fully observed
                }
            })
            .collect();
        let e = Column::from_opt_f64(e_vals);
        let cov = codes(&cov_v, 2);
        let w = ipw_weights(&e, &[&cov], &IpwOptions::default());
        // Average weight of observed stratum-0 rows must exceed stratum-1's.
        let avg = |stratum: u32| {
            let (mut s, mut c) = (0.0, 0usize);
            for (i, &wi) in w.iter().enumerate() {
                if wi > 0.0 && cov_v[i] == stratum {
                    s += wi;
                    c += 1;
                }
            }
            s / c as f64
        };
        assert!(avg(0) > avg(1) * 1.3, "avg0={} avg1={}", avg(0), avg(1));
    }

    #[test]
    fn ipw_corrects_biased_mean_estimate() {
        // Ground truth: O is 0/1 balanced within strata of Z, but stratum
        // membership shifts P(O). Missingness depends on Z (MAR given Z):
        // complete-case MI between Z and "observed O" distribution is
        // distorted; IPW restores the marginal of Z.
        let mut next = lcg(13);
        let n = 4000;
        let zv: Vec<u32> = (0..n).map(|_| next() % 2).collect();
        // O correlated with Z.
        let ov: Vec<u32> = zv
            .iter()
            .map(|&z| if next() % 10 < 7 { z } else { 1 - z })
            .collect();
        // E observed always when z=1, rarely when z=0.
        let e_vals: Vec<Option<f64>> = zv
            .iter()
            .map(|&z| {
                if z == 0 && next() % 10 < 8 {
                    None
                } else {
                    Some(1.0)
                }
            })
            .collect();
        let e = Column::from_opt_f64(e_vals);
        let z = codes(&zv, 2);

        // True marginal P(Z=0) = 0.5. Complete-case estimate is biased.
        let w = ipw_weights(&e, &[&z], &IpwOptions::default());
        let (mut w0, mut wt) = (0.0, 0.0);
        for (i, &wi) in w.iter().enumerate() {
            if wi > 0.0 {
                wt += wi;
                if zv[i] == 0 {
                    w0 += wi;
                }
            }
        }
        let weighted_p0 = w0 / wt;
        let complete0 = w
            .iter()
            .enumerate()
            .filter(|(i, &wi)| wi > 0.0 && zv[*i] == 0)
            .count();
        let complete = w.iter().filter(|&&wi| wi > 0.0).count();
        let unweighted_p0 = complete0 as f64 / complete as f64;
        assert!(
            unweighted_p0 < 0.3,
            "unweighted should be biased: {unweighted_p0}"
        );
        assert!(
            (weighted_p0 - 0.5).abs() < 0.1,
            "weighted should recover 0.5: {weighted_p0}"
        );

        // And weighted MI(Z, O) is closer to the full-data MI than the
        // complete-case MI.
        let o = codes(&ov, 2);
        let full = InfoContext::default().mutual_information(&z, &o);
        let cc_mask: nexus_table::Bitmap = (0..n).map(|i| !e.is_null(i)).collect();
        let cc = InfoContext::masked(&cc_mask).mutual_information(&z, &o);
        let weighted = InfoContext::weighted(&w).mutual_information(&z, &o);
        assert!(
            (weighted - full).abs() <= (cc - full).abs() + 1e-9,
            "weighted={weighted} cc={cc} full={full}"
        );
    }
}
