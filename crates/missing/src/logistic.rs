//! Logistic regression, used to model selection probabilities
//! `P(R_E = 1 | X)` for inverse probability weighting (Section 3.2).
//!
//! Implemented from scratch: batch gradient descent with L2 regularization
//! on one-hot-encoded categorical features. Deterministic (zero init, fixed
//! schedule), so IPW weights are reproducible.

use nexus_table::Codes;

/// A dense feature matrix in row-major order.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// Row-major feature values (`n_rows × n_features`).
    pub data: Vec<f64>,
    /// Number of rows.
    pub n_rows: usize,
    /// Number of features.
    pub n_features: usize,
}

impl FeatureMatrix {
    /// One-hot encodes a set of categorical variables.
    ///
    /// Each variable contributes `cardinality` indicator columns; invalid
    /// (null) rows contribute all-zeros for that variable, which acts as its
    /// own implicit level.
    pub fn one_hot(vars: &[&Codes]) -> FeatureMatrix {
        let n_rows = vars.first().map_or(0, |v| v.len());
        let n_features: usize = vars.iter().map(|v| v.cardinality as usize).sum();
        let mut data = vec![0.0; n_rows * n_features];
        let mut offset = 0usize;
        for v in vars {
            assert_eq!(v.len(), n_rows, "variable length mismatch");
            for i in 0..n_rows {
                if v.is_valid(i) {
                    data[i * n_features + offset + v.codes[i] as usize] = 1.0;
                }
            }
            offset += v.cardinality as usize;
        }
        FeatureMatrix {
            data,
            n_rows,
            n_features,
        }
    }

    /// The feature slice of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LogisticOptions {
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of full-batch gradient steps.
    pub iterations: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticOptions {
    fn default() -> Self {
        LogisticOptions {
            learning_rate: 0.5,
            iterations: 300,
            l2: 1e-3,
        }
    }
}

/// A fitted logistic regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Per-feature coefficients.
    pub coefficients: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl LogisticRegression {
    /// Fits `P(y=1|x)` by batch gradient descent.
    ///
    /// # Panics
    /// Panics if `y.len() != x.n_rows`.
    pub fn fit(x: &FeatureMatrix, y: &[f64], options: &LogisticOptions) -> LogisticRegression {
        assert_eq!(y.len(), x.n_rows, "label length mismatch");
        let n = x.n_rows.max(1) as f64;
        let d = x.n_features;
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        for _ in 0..options.iterations {
            let mut grad_w = vec![0.0f64; d];
            let mut grad_b = 0.0f64;
            for (i, &yi) in y.iter().enumerate() {
                let row = x.row(i);
                let z = b + dot(&w, row);
                let p = sigmoid(z);
                let err = p - yi;
                grad_b += err;
                for (g, &xi) in grad_w.iter_mut().zip(row) {
                    *g += err * xi;
                }
            }
            for (wi, g) in w.iter_mut().zip(&grad_w) {
                *wi -= options.learning_rate * (g / n + options.l2 * *wi);
            }
            b -= options.learning_rate * grad_b / n;
        }
        LogisticRegression {
            coefficients: w,
            intercept: b,
        }
    }

    /// Predicted probability for one feature row.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(self.intercept + dot(&self.coefficients, row))
    }

    /// Predicted probabilities for every row of a matrix.
    pub fn predict_all(&self, x: &FeatureMatrix) -> Vec<f64> {
        (0..x.n_rows)
            .map(|i| self.predict_proba(x.row(i)))
            .collect()
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(values: &[u32], card: u32) -> Codes {
        Codes {
            codes: values.to_vec(),
            cardinality: card,
            validity: None,
        }
    }

    #[test]
    fn one_hot_layout() {
        let a = codes(&[0, 1, 2], 3);
        let b = codes(&[1, 0, 1], 2);
        let m = FeatureMatrix::one_hot(&[&a, &b]);
        assert_eq!(m.n_rows, 3);
        assert_eq!(m.n_features, 5);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn one_hot_nulls_are_zero_rows() {
        let mut a = codes(&[0, 1], 2);
        let mut v = nexus_table::Bitmap::with_value(2, true);
        v.set(1, false);
        a.validity = Some(v);
        let m = FeatureMatrix::one_hot(&[&a]);
        assert_eq!(m.row(0), &[1.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn learns_separable_rule() {
        // y = 1 iff category 0.
        let a = codes(&[0, 0, 0, 1, 1, 1, 2, 2], 3);
        let x = FeatureMatrix::one_hot(&[&a]);
        let y = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let model = LogisticRegression::fit(&x, &y, &LogisticOptions::default());
        let p = model.predict_all(&x);
        assert!(p[0] > 0.8, "p0={}", p[0]);
        assert!(p[3] < 0.2, "p3={}", p[3]);
        assert!(p[6] < 0.2, "p6={}", p[6]);
    }

    #[test]
    fn balanced_noise_predicts_base_rate() {
        // y independent of x: predictions near the 0.5 base rate.
        let a = codes(&[0, 1, 0, 1, 0, 1, 0, 1], 2);
        let x = FeatureMatrix::one_hot(&[&a]);
        let y = vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let model = LogisticRegression::fit(&x, &y, &LogisticOptions::default());
        for p in model.predict_all(&x) {
            assert!((p - 0.5).abs() < 0.1, "p={p}");
        }
    }

    #[test]
    fn sigmoid_is_stable() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_fit() {
        let a = codes(&[0, 1, 0, 1], 2);
        let x = FeatureMatrix::one_hot(&[&a]);
        let y = vec![1.0, 0.0, 1.0, 0.0];
        let m1 = LogisticRegression::fit(&x, &y, &LogisticOptions::default());
        let m2 = LogisticRegression::fit(&x, &y, &LogisticOptions::default());
        assert_eq!(m1.coefficients, m2.coefficients);
        assert_eq!(m1.intercept, m2.intercept);
    }
}
