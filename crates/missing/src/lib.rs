//! # nexus-missing
//!
//! Missing-data machinery for the NEXUS system (Section 3.2 of the paper):
//!
//! * [`selection_indicator`] / [`detect_selection_bias`] — the `R_E`
//!   indicators and the observable recoverability checks of Props. 3.2/3.3;
//! * [`SelectionModel`] / [`ipw_weights`] — Inverse Probability Weighting
//!   with a from-scratch logistic-regression selection model;
//! * [`impute_mean`] / [`impute_mode`] and [`inject_missing`] — the
//!   imputation baselines and missing-value injectors used by the Figure 3
//!   robustness experiment.

#![warn(missing_docs)]

pub mod impute;
pub mod ipw;
pub mod logistic;
pub mod selection;

pub use impute::{impute_mean, impute_mode, inject_missing, MissingInjection};
pub use ipw::{ipw_weights, IpwOptions, SelectionModel};
pub use logistic::{FeatureMatrix, LogisticOptions, LogisticRegression};
pub use selection::{
    detect_selection_bias, indicator_from_bitmap, selection_indicator, BiasDetectOptions,
    BiasReport,
};
