//! End-to-end connection-governance tests over real sockets: connection
//! caps with `Busy` rejections and client retry, idle-timeout
//! enforcement, and shutdown that drains in-flight requests — asserted
//! via the server's governance counters (`conns_accepted`,
//! `busy_rejections`, `io_timeouts`, `drained_handlers`,
//! `live_handlers`), never via wall-clock timing.

use std::io::{Read, Write};
use std::time::Duration;

use nexus::core::Parallelism;
use nexus::kg::KnowledgeGraph;
use nexus::serve::wire::{decode_frame, encode_frame, error_code, Frame};
use nexus::serve::{Client, ExplainCall, RetryPolicy, Server, ServerOptions};
use nexus::table::{Column, Table};
use nexus::NexusOptions;

const SQL: &str = "SELECT Country, avg(Salary) FROM t GROUP BY Country";

/// Same compact world as `serve_e2e.rs`: development drives salary.
fn world() -> (Table, KnowledgeGraph) {
    let mut kg = KnowledgeGraph::new();
    let mut countries = Vec::new();
    let mut salaries = Vec::new();
    for c in 0..18 {
        let name = format!("Country_{c:02}");
        let dev = (c % 3) as f64;
        let id = kg.add_entity(name.clone(), "Country");
        kg.set_literal(id, "hdi", 0.4 + 0.2 * dev);
        kg.set_literal(id, "gini", 30.0 + ((c / 3) % 2) as f64 * 8.0);
        for i in 0..30 {
            countries.push(name.clone());
            salaries.push(30.0 + 20.0 * dev + (i % 3) as f64 * 0.2);
        }
    }
    let table = Table::new(vec![
        ("Country", Column::from_strs(&countries)),
        ("Salary", Column::from_f64(salaries)),
    ])
    .unwrap();
    (table, kg)
}

fn governed_server(options: ServerOptions) -> Server {
    let (table, kg) = world();
    let server = Server::new(options);
    server
        .add_dataset("world", table, kg, vec!["Country".into()])
        .expect("dataset loads");
    server
}

/// Binds the server on TCP loopback in a daemon thread; returns the
/// address and the daemon handle.
fn spawn_tcp(server: &Server) -> (String, std::thread::JoinHandle<()>) {
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let daemon = {
        let server = server.clone();
        std::thread::spawn(move || {
            server
                .serve_tcp("127.0.0.1:0", move |addr| {
                    addr_tx.send(addr).unwrap();
                })
                .expect("daemon exits cleanly");
        })
    };
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server binds")
        .to_string();
    (addr, daemon)
}

#[test]
fn over_cap_connection_gets_busy_and_a_retrying_client_recovers() {
    let server = governed_server(ServerOptions {
        max_connections: 1,
        ..ServerOptions::default()
    });
    let (addr, daemon) = spawn_tcp(&server);

    // Fill the only slot and prove it is established server-side.
    let mut holder = Client::connect_tcp(&addr).expect("connect");
    holder.ping().expect("slot holder is served");

    // The next connection must be bounced with Busy — read the one-shot
    // reply straight off the raw socket.
    let mut bounced = std::net::TcpStream::connect(&addr).expect("connect");
    bounced
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = vec![0u8; 1024];
    let n = bounced.read(&mut reply).expect("busy reply");
    match decode_frame(&reply[..n]) {
        Ok((Frame::Error(e), _)) => assert_eq!(e.code, error_code::BUSY),
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(bounced.read(&mut reply).unwrap_or(0), 0, "then closed");

    // A retrying client pointed at the saturated server blocks out its
    // backoff schedule; once the holder leaves, a retry gets through.
    let freer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        drop(holder);
    });
    let mut retrier = Client::connect_tcp(&addr).expect("connect");
    retrier.set_retry_policy(RetryPolicy {
        max_retries: 20,
        base_backoff: Duration::from_millis(20),
        max_backoff: Duration::from_millis(100),
        seed: 42,
    });
    retrier.ping().expect("retrying client recovers");
    freer.join().unwrap();

    let stats = retrier.stats().expect("stats");
    assert!(stats.busy_rejections >= 2, "bounced + ≥1 retry rejection");
    assert!(stats.conns_accepted >= 2, "holder + eventual retrier");

    retrier.shutdown().expect("shutdown");
    daemon.join().unwrap();
}

#[test]
fn idle_connection_is_timed_out_and_the_server_keeps_serving() {
    let server = governed_server(ServerOptions {
        io_timeout: Duration::from_millis(150),
        ..ServerOptions::default()
    });
    let (addr, daemon) = spawn_tcp(&server);

    // Connect and send nothing: the server must reply Error(TIMEOUT) and
    // close, counted in io_timeouts.
    let mut idler = std::net::TcpStream::connect(&addr).expect("connect");
    idler
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = vec![0u8; 1024];
    let n = idler.read(&mut reply).expect("timeout reply");
    match decode_frame(&reply[..n]) {
        Ok((Frame::Error(e), _)) => assert_eq!(e.code, error_code::TIMEOUT),
        other => panic!("expected timeout error, got {other:?}"),
    }
    assert_eq!(idler.read(&mut reply).unwrap_or(0), 0, "then closed");

    // A prompt client on a fresh connection is served normally.
    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.ping().expect("server still serves");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.io_timeouts, 1);

    client.shutdown().expect("shutdown");
    daemon.join().unwrap();
}

#[test]
fn slow_loris_header_is_timed_out() {
    let server = governed_server(ServerOptions {
        io_timeout: Duration::from_millis(150),
        ..ServerOptions::default()
    });
    let (addr, daemon) = spawn_tcp(&server);

    // Send a partial header and stall: the per-frame budget, not the idle
    // timeout, must kill it (first byte already arrived).
    let mut loris = std::net::TcpStream::connect(&addr).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loris
        .write_all(&encode_frame(&Frame::Ping)[..7])
        .expect("partial header");
    let mut reply = vec![0u8; 1024];
    let n = loris.read(&mut reply).expect("timeout reply");
    match decode_frame(&reply[..n]) {
        Ok((Frame::Error(e), _)) => assert_eq!(e.code, error_code::TIMEOUT),
        other => panic!("expected timeout error, got {other:?}"),
    }

    let mut client = Client::connect_tcp(&addr).expect("connect");
    assert_eq!(client.stats().expect("stats").io_timeouts, 1);
    client.shutdown().expect("shutdown");
    daemon.join().unwrap();
}

/// Shutdown arriving while an `Explain` is in flight: the in-flight reply
/// still arrives, the daemon drains every handler, and the post-drain
/// counters prove it — `live_handlers == 0`, `drained_handlers` covers
/// all accepted connections. Run at pipeline parallelism 1 and 8.
#[test]
fn shutdown_drains_in_flight_requests_at_either_pool_width() {
    for threads in [1usize, 8] {
        let server = governed_server(ServerOptions {
            nexus: NexusOptions::builder()
                .parallelism(Parallelism::Fixed(threads))
                .build()
                .expect("valid options"),
            ..ServerOptions::default()
        });
        let (addr, daemon) = spawn_tcp(&server);

        // In-flight worker: a cold Explain (the pipeline gives shutdown a
        // real in-flight request to race against).
        let worker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).expect("connect");
                client
                    .call(&ExplainCall::new("world", SQL))
                    .expect("in-flight reply")
            })
        };

        // Shutdown from a second connection as soon as the server has
        // accepted both — admission is observable via conns_accepted, so
        // this is counter-gated, not sleep-gated.
        let mut controller = Client::connect_tcp(&addr).expect("connect");
        loop {
            let stats = controller.stats().expect("stats");
            if stats.conns_accepted >= 2 {
                break;
            }
            std::thread::yield_now();
        }
        controller.shutdown().expect("shutdown acknowledged");

        // The in-flight explain must still complete with a real reply.
        let response = worker.join().expect("worker thread");
        assert!(
            !response.explanation_bytes.is_empty(),
            "threads {threads}: in-flight request must be answered during drain"
        );

        // Daemon returns only after the drain: every handler joined.
        daemon.join().unwrap();
        let stats = server.stats();
        assert_eq!(
            stats.live_handlers, 0,
            "threads {threads}: no handler thread may outlive the drain"
        );
        assert!(
            stats.drained_handlers >= 2,
            "threads {threads}: worker + controller handlers were joined, got {}",
            stats.drained_handlers
        );
        assert_eq!(stats.conns_accepted, 2, "threads {threads}");
        assert_eq!(stats.busy_rejections, 0, "threads {threads}");
    }
}
