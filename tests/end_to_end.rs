//! Cross-crate integration tests: SQL text in, explanation out, exercising
//! every workspace crate through the public facade.

use nexus::core::{unexplained_subgroups, CandidateSource, SubgroupOptions};
use nexus::kg::{KnowledgeGraph, PropertyValue};
use nexus::query::{execute, Catalog};
use nexus::table::{Column, Table};
use nexus::{parse, Nexus, NexusOptions};

/// A compact world: 18 countries, two latent factors (development drives
/// salary strongly, inequality weakly), one KG distractor per flavor.
fn world() -> (Table, KnowledgeGraph) {
    let mut kg = KnowledgeGraph::new();
    let mut countries = Vec::new();
    let mut continents = Vec::new();
    let mut genders = Vec::new();
    let mut salaries = Vec::new();
    for c in 0..18 {
        let name = format!("Country_{c:02}");
        let dev = (c % 3) as f64;
        let ineq = ((c / 3) % 2) as f64;
        let continent = if c < 9 { "Europe" } else { "Asia" };
        let id = kg.add_entity(name.clone(), "Country");
        kg.add_alias(id, format!("Republic of Country_{c:02}"));
        kg.set_literal(id, "hdi", 0.4 + 0.2 * dev);
        kg.set_literal(id, "gini", 30.0 + 8.0 * ineq);
        kg.set_literal(id, "wiki id", format!("Q{c:05}"));
        kg.set_literal(id, "type", "country");
        // A one-to-many link exercising the extraction aggregator.
        let g1 = kg.add_entity(format!("Group_{c}_a"), "Ethnic");
        let g2 = kg.add_entity(format!("Group_{c}_b"), "Ethnic");
        kg.set_literal(g1, "population", 100.0 + c as f64);
        kg.set_literal(g2, "population", 300.0 + c as f64);
        kg.set_property(id, "ethnic group", PropertyValue::EntityList(vec![g1, g2]));

        for i in 0..30 {
            countries.push(if i == 0 {
                format!("Republic of Country_{c:02}") // exercise the alias path
            } else {
                name.clone()
            });
            continents.push(continent);
            genders.push(if i % 5 == 0 { "f" } else { "m" });
            salaries.push(30.0 + 20.0 * dev - 4.0 * ineq + (i % 3) as f64 * 0.2);
        }
    }
    let table = Table::new(vec![
        ("Country", Column::from_strs(&countries)),
        ("Continent", Column::from_strs(&continents)),
        ("Gender", Column::from_strs(&genders)),
        ("Salary", Column::from_f64(salaries)),
    ])
    .unwrap();
    (table, kg)
}

#[test]
fn sql_to_explanation() {
    let (table, kg) = world();
    let query = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();

    // The query itself runs through the SQL engine.
    let mut catalog = Catalog::new();
    catalog.register("t", table.clone());
    let result = execute(&query, &catalog).unwrap();
    // SQL groups by surface form: 18 canonical names + 18 alias spellings.
    // (The KG linker reconciles both spellings to 18 entities below.)
    assert_eq!(result.n_rows(), 36);

    // And the pipeline explains it.
    let e = Nexus::default()
        .explain(&table, &kg, &["Country".to_string()], &query)
        .unwrap();
    assert!(e.initial_cmi > 0.5, "baseline {}", e.initial_cmi);
    assert!(
        e.names().contains(&"Country::hdi"),
        "expected hdi in {:?}",
        e.names()
    );
    assert!(e.explained_fraction() > 0.5, "{e:?}");
    // Identifier and constant distractors never survive.
    assert!(!e.names().iter().any(|n| n.contains("wiki id")));
    assert!(!e.names().iter().any(|n| n.contains("type")));
}

#[test]
fn context_refinement_changes_explanation() {
    let (table, kg) = world();
    let q_all = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
    let q_eu =
        parse("SELECT Country, avg(Salary) FROM t WHERE Continent = 'Europe' GROUP BY Country")
            .unwrap();
    let nexus = Nexus::default();
    let e_all = nexus
        .explain(&table, &kg, &["Country".to_string()], &q_all)
        .unwrap();
    let e_eu = nexus
        .explain(&table, &kg, &["Country".to_string()], &q_eu)
        .unwrap();
    // Both find an explanation; the European one runs on the refined mask.
    assert!(!e_all.names().is_empty());
    assert!(!e_eu.names().is_empty());
}

#[test]
fn subgroups_after_explanation() {
    let (table, kg) = world();
    let query = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
    let nexus = Nexus::default();
    let (e, artifacts) = nexus
        .explain_with_artifacts(&table, &kg, &["Country".to_string()], &query)
        .unwrap();
    let subgroups = unexplained_subgroups(
        &table,
        &artifacts.set,
        &artifacts.mcimr.selected,
        &["Country", "Salary"],
        &nexus.options,
        &SubgroupOptions::default(),
    )
    .unwrap();
    // The planted world is fully explainable: no large unexplained group
    // should survive a reasonable threshold.
    assert!(
        subgroups.iter().all(|s| s.score > 0.2),
        "all reported groups exceed τ: {subgroups:?}"
    );
    let _ = e;
}

#[test]
fn multi_hop_extraction_reaches_linked_entities() {
    let (table, kg) = world();
    let query = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
    let options = NexusOptions {
        hops: 2,
        ..NexusOptions::default()
    };
    let e = Nexus::new(options)
        .explain(&table, &kg, &["Country".to_string()], &query)
        .unwrap();
    // Multi-hop extraction adds candidates (ethnic-group aggregates).
    let single_hop = Nexus::default()
        .explain(&table, &kg, &["Country".to_string()], &query)
        .unwrap();
    assert!(
        e.stats.n_candidates_initial > single_hop.stats.n_candidates_initial,
        "2-hop {} vs 1-hop {}",
        e.stats.n_candidates_initial,
        single_hop.stats.n_candidates_initial
    );
}

#[test]
fn explanation_sources_are_tracked() {
    let (table, kg) = world();
    let query = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
    let e = Nexus::default()
        .explain(&table, &kg, &["Country".to_string()], &query)
        .unwrap();
    for attr in &e.attributes {
        match &attr.source {
            CandidateSource::Extracted { column } => assert_eq!(column, "Country"),
            CandidateSource::BaseTable => {
                assert!(["Continent", "Gender"].contains(&attr.name.as_str()))
            }
        }
    }
}

#[test]
fn csv_roundtrip_feeds_pipeline() {
    // Write the base table to CSV, read it back, and explain — exercising
    // the I/O path end to end.
    let (table, kg) = world();
    let mut buf = Vec::new();
    nexus::table::write_csv(&table, &mut buf).unwrap();
    let table2 =
        nexus::table::read_csv(buf.as_slice(), &nexus::table::CsvOptions::default()).unwrap();
    assert_eq!(table2.n_rows(), table.n_rows());
    let query = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
    let e = Nexus::default()
        .explain(&table2, &kg, &["Country".to_string()], &query)
        .unwrap();
    assert!(e.names().contains(&"Country::hdi"), "{:?}", e.names());
}
