//! End-to-end serving tests: a real [`nexus::serve::Server`] on a Unix
//! socket (and TCP loopback), a blocking [`nexus::serve::Client`], and the
//! tentpole guarantees of the resident server:
//!
//! * a cache hit returns a payload **byte-identical** to the cold run;
//! * the hit is ≥10× cheaper, asserted via the server's own counters —
//!   the cold run scores ≥10 pool tasks, the hit scores **zero** (the
//!   pipeline never executes) — not via wall-clock;
//! * the served explanation matches a direct in-process `Nexus` run.

use std::time::Duration;

use nexus::kg::{KnowledgeGraph, PropertyValue};
use nexus::serve::wire::{decode_frame, encode_frame, Frame, MAGIC, MAX_VERSION};
use nexus::serve::{explanation_to_wire, Client, ExplainCall, Server, ServerOptions, Session};
use nexus::table::{Column, Table};
use nexus::{parse, ExplainRequest, Nexus, NexusOptions};

const SQL: &str = "SELECT Country, avg(Salary) FROM t GROUP BY Country";

/// A compact world: 18 countries, development drives salary, inequality
/// perturbs it, plus KG distractors (same shape as `end_to_end.rs`).
fn world() -> (Table, KnowledgeGraph) {
    let mut kg = KnowledgeGraph::new();
    let mut countries = Vec::new();
    let mut genders = Vec::new();
    let mut salaries = Vec::new();
    for c in 0..18 {
        let name = format!("Country_{c:02}");
        let dev = (c % 3) as f64;
        let ineq = ((c / 3) % 2) as f64;
        let id = kg.add_entity(name.clone(), "Country");
        kg.set_literal(id, "hdi", 0.4 + 0.2 * dev);
        kg.set_literal(id, "gini", 30.0 + 8.0 * ineq);
        kg.set_literal(id, "wiki id", format!("Q{c:05}"));
        let g1 = kg.add_entity(format!("Group_{c}_a"), "Ethnic");
        let g2 = kg.add_entity(format!("Group_{c}_b"), "Ethnic");
        kg.set_literal(g1, "population", 100.0 + c as f64);
        kg.set_literal(g2, "population", 300.0 + c as f64);
        kg.set_property(id, "ethnic group", PropertyValue::EntityList(vec![g1, g2]));
        for i in 0..30 {
            countries.push(name.clone());
            genders.push(if i % 5 == 0 { "f" } else { "m" });
            salaries.push(30.0 + 20.0 * dev - 4.0 * ineq + (i % 3) as f64 * 0.2);
        }
    }
    let table = Table::new(vec![
        ("Country", Column::from_strs(&countries)),
        ("Gender", Column::from_strs(&genders)),
        ("Salary", Column::from_f64(salaries)),
    ])
    .unwrap();
    (table, kg)
}

fn resident_server() -> Server {
    let (table, kg) = world();
    let server = Server::new(ServerOptions::default());
    server
        .add_dataset("world", table, kg, vec!["Country".into()])
        .expect("dataset loads");
    server
}

#[test]
fn unix_socket_round_trip_with_cache_guarantees() {
    let dir = std::env::temp_dir().join(format!("nexus-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("nexus.sock");

    let server = resident_server();
    let daemon = {
        let server = server.clone();
        let socket = socket.clone();
        std::thread::spawn(move || server.serve_unix(&socket))
    };
    // Wait for the socket to appear.
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut client = Client::connect_unix(&socket).expect("connect");
    client.ping().expect("ping");

    // Cold run: misses the cache and scores candidates on the pool.
    let cold = client
        .call(&ExplainCall::new("world", SQL))
        .expect("cold explain");
    assert!(!cold.stats.cache_hit);
    assert!(
        cold.stats.scored_tasks >= 10,
        "cold run should score at least 10 pool tasks, got {}",
        cold.stats.scored_tasks
    );

    // Repeat: byte-identical payload, and ≥10× cheaper by the server's own
    // counters — the hit scores zero tasks (pipeline skipped), versus ≥10
    // cold. No wall-clock involved.
    let hot = client
        .call(&ExplainCall::new("world", SQL))
        .expect("hot explain");
    assert!(hot.stats.cache_hit);
    assert_eq!(
        hot.stats.scored_tasks, 0,
        "cache hit must not run candidate scoring"
    );
    assert!(cold.stats.scored_tasks >= 10 * (hot.stats.scored_tasks + 1));
    assert_eq!(
        cold.explanation_bytes, hot.explanation_bytes,
        "cache hit must be byte-identical to the cold response"
    );
    assert!(hot.stats.cache_hits >= 1);
    assert_eq!(hot.stats.cache_misses, cold.stats.cache_misses);

    // The served result equals a direct in-process run on the same data.
    let (table, kg) = world();
    let query = parse(SQL).unwrap();
    let direct = Nexus::new(NexusOptions::default())
        .run(
            &ExplainRequest::new()
                .table(&table)
                .knowledge_graph(&kg)
                .extraction_column("Country")
                .query(&query),
        )
        .expect("direct run");
    assert_eq!(
        explanation_to_wire(&direct).encode(),
        cold.explanation_bytes,
        "served payload must equal a direct pipeline run"
    );
    assert!(explanation_to_wire(&direct)
        .attributes
        .iter()
        .any(|a| a.name == "Country::hdi"));

    // Server-side stats agree with what the client observed.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.datasets, 1);
    assert!(stats.cache_hits >= 1 && stats.cache_misses >= 1);
    assert!(stats.requests_served >= 2);

    // Unknown dataset is an error reply, not a dropped connection.
    let err = client
        .call(&ExplainCall::new("nope", SQL))
        .expect_err("unknown dataset");
    assert!(err.to_string().contains("nope"));
    client.ping().expect("connection survives an error reply");

    // Graceful shutdown: acknowledged, daemon exits, socket removed.
    client.shutdown().expect("shutdown");
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
    assert!(!socket.exists(), "socket file should be cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_round_trip_and_concurrent_clients() {
    let server = resident_server();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let daemon = {
        let server = server.clone();
        std::thread::spawn(move || {
            server.serve_tcp("127.0.0.1:0", move |addr| {
                addr_tx.send(addr).unwrap();
            })
        })
    };
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server binds")
        .to_string();

    // Several clients submit the same query concurrently; every reply must
    // carry the same payload bytes regardless of who warmed the cache.
    let payloads: Vec<Vec<u8>> = {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect_tcp(&addr).expect("connect");
                    client
                        .call(&ExplainCall::new("world", SQL))
                        .expect("explain")
                        .explanation_bytes
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    };
    for p in &payloads[1..] {
        assert_eq!(&payloads[0], p, "all clients must see identical bytes");
    }

    let mut client = Client::connect_tcp(&addr).expect("connect");
    assert!(
        client
            .call(&ExplainCall::new("world", SQL))
            .expect("explain")
            .stats
            .cache_hit
    );
    client.shutdown().expect("shutdown");
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
}

#[test]
fn server_answers_unsupported_for_foreign_frames() {
    use std::io::{Read, Write};

    let server = resident_server();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let daemon = {
        let server = server.clone();
        std::thread::spawn(move || {
            server.serve_tcp("127.0.0.1:0", move |addr| {
                addr_tx.send(addr).unwrap();
            })
        })
    };
    let addr = addr_rx.recv_timeout(Duration::from_secs(10)).expect("bind");

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");

    // A frame from a future protocol version: well-formed envelope, higher
    // version number, valid CRC. The server must answer Unsupported and
    // keep the connection alive.
    let mut future = encode_frame(&Frame::Ping);
    future[8..10].copy_from_slice(&7u16.to_le_bytes());
    let body_end = future.len() - 4;
    let crc = nexus::serve::wire::crc32(&future[..body_end]).to_le_bytes();
    future[body_end..].copy_from_slice(&crc);
    stream.write_all(&future).unwrap();

    let mut reply = vec![0u8; 1024];
    let n = stream.read(&mut reply).unwrap();
    match decode_frame(&reply[..n]) {
        Ok((Frame::Unsupported(u), _)) => {
            assert_eq!(u.version, 7);
            assert_eq!(u.max_supported, MAX_VERSION, "the server speaks up to v2");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }

    // The same connection still answers a v1 Ping afterwards.
    stream.write_all(&encode_frame(&Frame::Ping)).unwrap();
    let n = stream.read(&mut reply).unwrap();
    assert!(matches!(decode_frame(&reply[..n]), Ok((Frame::Pong, _))));

    // Garbage (bad magic) drops the connection without killing the server.
    let mut garbage = encode_frame(&Frame::Ping);
    garbage[..8].copy_from_slice(b"NOTMAGIC");
    assert_ne!(garbage[..8], MAGIC);
    stream.write_all(&garbage).unwrap();
    let n = stream.read(&mut reply).unwrap_or(0);
    assert_eq!(n, 0, "server should drop the connection on bad magic");

    let mut client = Client::connect_tcp(&addr.to_string()).expect("reconnect");
    client.ping().expect("server survives");
    client.shutdown().expect("shutdown");
    daemon.join().unwrap().expect("clean exit");
}

#[test]
fn v2_session_pipelines_over_tcp_with_typed_calls() {
    let server = resident_server();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let daemon = {
        let server = server.clone();
        std::thread::spawn(move || {
            server.serve_tcp("127.0.0.1:0", move |addr| {
                addr_tx.send(addr).unwrap();
            })
        })
    };
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server binds")
        .to_string();

    let session = Session::connect_tcp(&addr).expect("v2 handshake");
    assert!(session.max_inflight() >= 8);

    // Eight identical calls plus one with a per-call override (a v2-only
    // feature a v1 Client refuses), all in flight on one connection.
    let call = ExplainCall::new("world", SQL);
    let tickets: Vec<_> = (0..8)
        .map(|_| session.submit(&call).expect("submit"))
        .collect();
    let capped = session
        .submit(&call.clone().top_k(1))
        .expect("submit with overrides");

    // The inline pong overtakes every in-flight explain.
    session.ping().expect("ping mid-pipeline");

    // Collect out of submission order; replies must be byte-identical.
    let last_first = tickets.last().unwrap().wait().expect("last ticket");
    for ticket in &tickets {
        let reply = ticket.wait().expect("pipelined reply");
        assert_eq!(
            reply.explanation_bytes, last_first.explanation_bytes,
            "pipelined replies must be byte-identical"
        );
    }
    let capped_reply = capped.wait().expect("override reply");
    assert!(capped_reply.explanation.attributes.len() <= 1, "top_k=1");
    assert!(
        !capped.partials().is_empty() || capped_reply.explanation.attributes.is_empty(),
        "a cold run streams one partial per selected attribute"
    );

    // The v1 client path still refuses override calls loudly.
    let mut v1 = Client::connect_tcp(&addr).expect("v1 connect");
    assert!(matches!(
        v1.call(&call.clone().top_k(1)),
        Err(nexus::serve::ClientError::NeedsSession)
    ));
    drop(v1);

    let stats = session.stats().expect("stats over the session");
    assert!(
        stats.inflight_peak >= 8,
        "the pipeline must overlap at least its eight identical calls; peak {}",
        stats.inflight_peak
    );
    assert!(
        stats.ooo_replies >= 1,
        "the overtaking pong is an out-of-order completion"
    );

    drop(tickets);
    drop(capped);
    drop(session);
    let mut controller = Client::connect_tcp(&addr).expect("controller");
    controller.shutdown().expect("shutdown");
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
}
