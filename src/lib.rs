//! # NEXUS
//!
//! A from-scratch Rust reproduction of SIGMOD 2023's **"On Explaining
//! Confounding Bias"** (the MESA/NEXUS system): given an aggregate SQL
//! query whose result shows a surprising correlation, find the set of
//! confounding attributes — mined from the input table *and* an external
//! knowledge graph — that explains the correlation away.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`table`] — columnar dataframe substrate (typed columns, nulls, CSV,
//!   joins, group-by, binning);
//! * [`query`] — the supported SQL subset (aggregate group-by with WHERE
//!   and JOIN);
//! * [`info`] — information-theoretic estimators (entropy/MI/CMI, weighted,
//!   Miller–Madow corrected, independence tests);
//! * [`kg`] — knowledge-graph store, entity linking, multi-hop extraction;
//! * [`missing`] — selection-bias detection, IPW, imputation;
//! * [`core`] — the MCIMR algorithm, pruning, responsibility, subgroups,
//!   and the end-to-end [`Nexus`] pipeline;
//! * [`baselines`] — Brute-Force, Top-K, OLS, HypDB-like, CajaDE-like;
//! * [`lake`] — data-lake knowledge source (joinability discovery +
//!   extraction from related tables);
//! * [`datagen`] — synthetic paper datasets with planted ground truth;
//! * [`eval`] — the experiment harness regenerating every table and figure;
//! * [`serve`] — the resident explanation server (NEXUSRPC binary
//!   protocol, fingerprint-keyed result cache, Unix/TCP endpoints,
//!   multi-dataset registry);
//! * [`store`] — NXCOL v1, the deterministic on-disk columnar store
//!   behind `nexus-cli pack` and instant server restarts;
//! * [`telemetry`] — the unified metrics registry (named counters, gauges,
//!   log₂ histograms; sorted iteration) and per-request span tracing behind
//!   `nexus-cli metrics`/`trace`.
//!
//! ## Quickstart
//!
//! ```
//! use nexus::{parse, ExplainRequest, Nexus, NexusOptions};
//! use nexus::kg::KnowledgeGraph;
//! use nexus::table::{Column, Table};
//!
//! let mut kg = KnowledgeGraph::new();
//! let mut country_col = Vec::new();
//! let mut salary_col = Vec::new();
//! for c in 0..9 {
//!     let name = format!("C{c}");
//!     let id = kg.add_entity(name.clone(), "Country");
//!     kg.set_literal(id, "hdi", (c % 3) as f64);
//!     for i in 0..30 {
//!         country_col.push(name.clone());
//!         salary_col.push(10.0 * (c % 3) as f64 + (i % 2) as f64 * 0.1);
//!     }
//! }
//! let table = Table::new(vec![
//!     ("Country", Column::from_strs(&country_col)),
//!     ("Salary", Column::from_f64(salary_col)),
//! ]).unwrap();
//!
//! let query = parse("SELECT Country, avg(Salary) FROM t GROUP BY Country").unwrap();
//! let request = ExplainRequest::new()
//!     .table(&table)
//!     .knowledge_graph(&kg)
//!     .extraction_column("Country")
//!     .query(&query);
//! let options = NexusOptions::builder().threads(2).build().unwrap();
//! let explanation = Nexus::new(options).run(&request).unwrap();
//! assert!(explanation.names().contains(&"Country::hdi"));
//! ```

#![warn(missing_docs)]

pub use nexus_baselines as baselines;
pub use nexus_core as core;
pub use nexus_datagen as datagen;
pub use nexus_eval as eval;
pub use nexus_info as info;
pub use nexus_kg as kg;
pub use nexus_lake as lake;
pub use nexus_missing as missing;
pub use nexus_query as query;
pub use nexus_serve as serve;
pub use nexus_store as store;
pub use nexus_table as table;
pub use nexus_telemetry as telemetry;

pub use nexus_core::{
    ExplainRequest, Explanation, Nexus, NexusOptions, NexusOptionsBuilder, Parallelism,
};
pub use nexus_query::parse;
