//! The `nexus-cli` command-line tool: explain a confounded correlation in
//! a CSV file using a knowledge graph (triple file) or a data lake (a
//! directory of CSVs) as the knowledge source.
//!
//! ```text
//! nexus-cli --table data.csv --kg knowledge.tsv \
//!           --extract Country --extract Continent \
//!           --sql "SELECT Country, avg(Salary) FROM t GROUP BY Country" \
//!           [--k 5] [--hops 1] [--threads N] [--subgroups] [--no-pruning]
//!
//! nexus-cli --table data.csv --lake ./lake-dir --extract Country --sql "…"
//! ```

use std::process::exit;

use nexus::core::{unexplained_subgroups, SubgroupOptions};
use nexus::kg::KnowledgeGraph;
use nexus::lake::{DataLake, LakeOptions};
use nexus::table::read_csv_path;
use nexus::{parse, ExplainRequest, Nexus, NexusOptions};

struct Args {
    table: String,
    kg: Option<String>,
    lake: Option<String>,
    extract: Vec<String>,
    sql: String,
    k: usize,
    hops: usize,
    threads: usize,
    subgroups: bool,
    no_pruning: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: nexus-cli --table <csv> (--kg <triples.tsv> | --lake <dir>) \
         --extract <column>... --sql <query> [--k N] [--hops N] [--threads N] \
         [--subgroups] [--no-pruning]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        table: String::new(),
        kg: None,
        lake: None,
        extract: Vec::new(),
        sql: String::new(),
        k: 5,
        hops: 1,
        threads: 0,
        subgroups: false,
        no_pruning: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--table" => args.table = value(&mut i),
            "--kg" => args.kg = Some(value(&mut i)),
            "--lake" => args.lake = Some(value(&mut i)),
            "--extract" => args.extract.push(value(&mut i)),
            "--sql" => args.sql = value(&mut i),
            "--k" => args.k = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--hops" => args.hops = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--subgroups" => args.subgroups = true,
            "--no-pruning" => args.no_pruning = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    if args.table.is_empty() || args.sql.is_empty() || args.extract.is_empty() {
        usage()
    }
    if args.kg.is_none() == args.lake.is_none() {
        eprintln!("exactly one of --kg or --lake is required");
        usage()
    }
    args
}

fn main() {
    let args = parse_args();

    let table = match read_csv_path(&args.table) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read {}: {e}", args.table);
            exit(1)
        }
    };

    let query = match parse(&args.sql) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("failed to parse SQL: {e}");
            exit(1)
        }
    };

    let mut request = ExplainRequest::new()
        .table(&table)
        .extraction_columns(args.extract.iter().cloned())
        .query(&query);
    let file_kg: KnowledgeGraph;
    if let Some(path) = &args.kg {
        file_kg = match nexus::kg::read_kg_path(path) {
            Ok(kg) => kg,
            Err(e) => {
                eprintln!("failed to read KG {path}: {e}");
                exit(1)
            }
        };
        request = request.knowledge_graph(&file_kg);
    } else {
        let dir = args.lake.as_deref().expect("validated");
        let mut lake = DataLake::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("failed to read lake dir {dir}: {e}");
                exit(1)
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("csv") {
                match read_csv_path(&path) {
                    Ok(t) => {
                        let name = path
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .unwrap_or("table")
                            .to_string();
                        eprintln!("lake: loaded {name} ({} rows)", t.n_rows());
                        lake.add_table(name, t);
                    }
                    Err(e) => eprintln!("lake: skipping {}: {e}", path.display()),
                }
            }
        }
        // Build one KG keyed by the first extraction column.
        let col = match table.column(&args.extract[0]) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                exit(1)
            }
        };
        request = request.lake(lake.to_knowledge_graph(col, &LakeOptions::default()));
    }

    let options = match NexusOptions::builder()
        .max_explanation_size(args.k)
        .hops(args.hops)
        .threads(args.threads)
        .offline_pruning(!args.no_pruning)
        .online_pruning(!args.no_pruning)
        .build()
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            exit(2)
        }
    };

    let nexus = Nexus::new(options);
    let (explanation, artifacts) = match nexus.run_with_artifacts(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            exit(1)
        }
    };

    println!("query: {query}");
    println!(
        "I(O;T|C) = {:.4} bits → {:.4} bits after conditioning ({:.0}% explained)",
        explanation.initial_cmi,
        explanation.explained_cmi,
        100.0 * explanation.explained_fraction()
    );
    if explanation.attributes.is_empty() {
        println!("no explanation found (no candidate earned calibrated credit)");
    } else {
        println!("explanation:");
        for attr in &explanation.attributes {
            println!(
                "  {:<32} responsibility {:.2}{}",
                attr.name,
                attr.responsibility,
                if attr.weighted { "  [IPW]" } else { "" }
            );
        }
    }
    let s = &explanation.stats;
    println!(
        "candidates {} → {} (offline) → {} (online); {} selection-biased; {:.2?} total",
        s.n_candidates_initial,
        s.n_after_offline,
        s.n_after_online,
        s.n_biased,
        s.total()
    );
    println!(
        "pool: {} thread(s), {} task(s), {:.2}x scoring speedup",
        s.threads,
        s.pool_tasks,
        s.parallel_speedup()
    );

    if args.subgroups {
        let exclude: Vec<&str> = query
            .group_by
            .iter()
            .map(|s| s.as_str())
            .chain(query.outcome().map(|(_, o)| o))
            .collect();
        match unexplained_subgroups(
            &table,
            &artifacts.set,
            &artifacts.mcimr.selected,
            &exclude,
            &nexus.options,
            &SubgroupOptions {
                tau: 0.2 * explanation.initial_cmi.max(1.0),
                ..SubgroupOptions::default()
            },
        ) {
            Ok(groups) if groups.is_empty() => {
                println!("no unexplained subgroups above threshold")
            }
            Ok(groups) => {
                println!("unexplained subgroups:");
                for (i, g) in groups.iter().enumerate() {
                    println!(
                        "  {}. size {:>6}  score {:.3}  {}",
                        i + 1,
                        g.size,
                        g.score,
                        g.describe()
                    );
                }
            }
            Err(e) => eprintln!("subgroup search failed: {e}"),
        }
    }
}
