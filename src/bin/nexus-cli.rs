//! The `nexus-cli` command-line tool: explain a confounded correlation in
//! a CSV file using a knowledge graph (triple file) or a data lake (a
//! directory of CSVs) as the knowledge source — one-shot, or through a
//! resident explanation server.
//!
//! ```text
//! # One-shot explanation:
//! nexus-cli explain --table data.csv --kg knowledge.tsv \
//!           --extract Country --extract Continent \
//!           --sql "SELECT Country, avg(Salary) FROM t GROUP BY Country" \
//!           [--k 5] [--hops 1] [--threads N] [--subgroups] [--no-pruning]
//!
//! # Resident server on a Unix socket (or --tcp 127.0.0.1:PORT):
//! nexus-cli serve --socket /tmp/nexus.sock --table data.csv \
//!           --kg knowledge.tsv --extract Country [--name salaries]
//!
//! # Submit queries to it:
//! nexus-cli submit --socket /tmp/nexus.sock --sql "SELECT …" [--dataset salaries]
//! nexus-cli submit --socket /tmp/nexus.sock --shutdown
//!
//! # Pack a CSV into the NXCOL columnar store and look inside it:
//! nexus-cli pack --table data.csv --out data.nxcol
//! nexus-cli inspect --store data.nxcol
//!
//! # Serve straight from the store (lazy materialization, LRU-bounded):
//! nexus-cli serve --socket /tmp/nexus.sock --store data.nxcol \
//!           --kg knowledge.tsv --extract Country [--max-store-bytes N]
//!
//! # Manage the dataset registry of a running server:
//! nexus-cli datasets --socket /tmp/nexus.sock --list
//! nexus-cli datasets --socket /tmp/nexus.sock --load salaries \
//!           --store data.nxcol --kg knowledge.tsv --extract Country
//! nexus-cli datasets --socket /tmp/nexus.sock --evict salaries
//! ```
//!
//! The legacy flag-only form (`nexus-cli --table … --sql …`) still works
//! and means `explain`.
//!
//! Deterministic explanation output goes to **stdout** (identical between
//! `explain` and `submit` for the same inputs — scriptable and diffable);
//! timings, cache statistics, and progress go to **stderr**.

use std::process::exit;

use nexus::core::{unexplained_subgroups, SubgroupOptions};
use nexus::kg::KnowledgeGraph;
use nexus::lake::{DataLake, LakeOptions};
use nexus::serve::wire::{
    encode_frame, error_code, read_frame, ExplanationWire, Frame, MetricWire, TraceWire,
};
use nexus::serve::{
    explanation_to_wire, Client, ClientError, ExplainCall, RetryPolicy, Server, ServerOptions,
    Session,
};
use nexus::table::{read_csv_path, Table};
use nexus::telemetry::MetricKind;
use nexus::{parse, ExplainRequest, Nexus, NexusOptions};

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         \x20 nexus-cli explain --table <csv> (--kg <triples.tsv> | --lake <dir>) \
         --extract <column>... --sql <query>\n\
         \x20         [--k N] [--hops N] [--threads N] [--subgroups] [--no-pruning]\n\
         \x20 nexus-cli serve (--socket <path> | --tcp <addr>) \
         (--table <csv> (--kg <triples.tsv> | --lake <dir>) | --store <nxcol> [--kg <triples.tsv>]) \
         --extract <column>...\n\
         \x20         [--name <dataset>] [--k N] [--hops N] [--threads N] [--no-pruning] \
         [--cache N] [--max-concurrent N]\n\
         \x20         [--max-conns N] [--io-timeout-ms N] [--drain-timeout-ms N] \
         [--max-store-bytes N] [--max-memo-bytes N]\n\
         \x20 nexus-cli pack --table <csv> --out <nxcol>\n\
         \x20 nexus-cli inspect --store <nxcol>\n\
         \x20 nexus-cli datasets (--socket <path> | --tcp <addr>) \
         (--list | --load <name> --store <nxcol> [--kg <triples.tsv>] [--extract <column>...] \
         | --evict <name>)\n\
         \x20 nexus-cli submit (--socket <path> | --tcp <addr>) --sql <query> \
         [--dataset <name>] [--retries N] [--timeout-ms N]\n\
         \x20         [--pipeline N [--cancel] [--vary-topk]] [--trace] | --shutdown | --ping | --stats\n\
         \x20 nexus-cli metrics (--socket <path> | --tcp <addr>)\n\
         \x20 nexus-cli trace (--socket <path> | --tcp <addr>) [--last N]\n\
         \x20 nexus-cli abuse (--socket <path> | --tcp <addr>) \
         --mode (stall | overlimit | busy)"
    );
    exit(2)
}

/// Flags shared by `explain` and `serve`: where the data lives and how the
/// pipeline runs.
#[derive(Default)]
struct DataArgs {
    table: String,
    /// An NXCOL store file serving as the table source instead of a CSV.
    store: Option<String>,
    kg: Option<String>,
    lake: Option<String>,
    extract: Vec<String>,
    k: usize,
    hops: usize,
    threads: usize,
    no_pruning: bool,
}

struct ExplainArgs {
    data: DataArgs,
    sql: String,
    subgroups: bool,
}

struct ServeArgs {
    data: DataArgs,
    socket: Option<String>,
    tcp: Option<String>,
    name: String,
    cache: usize,
    max_concurrent: usize,
    max_conns: usize,
    io_timeout_ms: u64,
    drain_timeout_ms: u64,
    /// Registry byte budget for resident datasets (0 = unbounded).
    max_store_bytes: u64,
    /// Sub-query memo byte budget override (`Some(0)` = unbounded).
    max_memo_bytes: Option<u64>,
    /// Trace-ring capacity override (`Some(0)` disables tracing).
    trace_capacity: Option<usize>,
}

struct PackArgs {
    table: String,
    out: String,
}

struct DatasetsArgs {
    socket: Option<String>,
    tcp: Option<String>,
    load: Option<String>,
    evict: Option<String>,
    list: bool,
    store: Option<String>,
    kg: Option<String>,
    extract: Vec<String>,
}

struct SubmitArgs {
    socket: Option<String>,
    tcp: Option<String>,
    dataset: String,
    sql: String,
    shutdown: bool,
    ping: bool,
    stats: bool,
    retries: usize,
    timeout_ms: u64,
    /// `> 0`: open a v2 session and keep this many copies of the query
    /// in flight over one connection.
    pipeline: usize,
    /// Cancel the last pipelined request mid-flight (v2 smoke).
    cancel: bool,
    /// Give pipelined request `i` a `top_k` override of `i + 1`:
    /// overlapping-but-distinct queries that share every sub-computation
    /// without sharing a result-cache entry (the memo coalescing smoke).
    vary_topk: bool,
    /// Fetch and print this request's span trace to stderr after the
    /// reply (stdout stays diffable against a plain submit).
    trace: bool,
}

/// A self-contained misbehaving client, used by the CI abuse smoke to
/// prove governance replies without hand-rolled netcat scripting.
struct AbuseArgs {
    socket: Option<String>,
    tcp: Option<String>,
    mode: String,
}

enum Command {
    Explain(ExplainArgs),
    Serve(ServeArgs),
    Submit(SubmitArgs),
    Abuse(AbuseArgs),
    Pack(PackArgs),
    Inspect {
        store: String,
    },
    Datasets(DatasetsArgs),
    /// Prometheus text exposition of the server's metrics snapshot.
    Metrics {
        socket: Option<String>,
        tcp: Option<String>,
    },
    /// Span trees of the last N traced requests.
    Trace {
        socket: Option<String>,
        tcp: Option<String>,
        last: usize,
    },
}

fn parse_command() -> Command {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage()
    }
    let sub = if argv[0].starts_with("--") {
        // Legacy flag-only form means `explain`.
        "explain".to_string()
    } else {
        argv.remove(0)
    };

    let mut data = DataArgs {
        k: 5,
        hops: 1,
        ..DataArgs::default()
    };
    let mut sql = String::new();
    let mut subgroups = false;
    let mut socket = None;
    let mut tcp = None;
    let mut name = "default".to_string();
    let mut dataset = "default".to_string();
    let mut cache = 256;
    let mut max_concurrent = 0usize;
    let mut max_conns = 0usize;
    let mut io_timeout_ms = 0u64;
    let mut drain_timeout_ms = 0u64;
    let mut retries = 0usize;
    let mut timeout_ms = 0u64;
    let mut pipeline = 0usize;
    let mut cancel = false;
    let mut vary_topk = false;
    let mut trace = false;
    let mut last = 8usize;
    let mut trace_capacity: Option<usize> = None;
    let mut mode = String::new();
    let (mut shutdown, mut ping, mut stats) = (false, false, false);
    let mut out = String::new();
    let mut max_store_bytes = 0u64;
    let mut max_memo_bytes: Option<u64> = None;
    let mut load = None;
    let mut evict = None;
    let mut list = false;

    let mut i = 0;
    let value = |i: &mut usize, argv: &[String]| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let number = |i: &mut usize, argv: &[String]| -> usize {
        value(i, argv).parse().unwrap_or_else(|_| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--table" => data.table = value(&mut i, &argv),
            "--store" => data.store = Some(value(&mut i, &argv)),
            "--kg" => data.kg = Some(value(&mut i, &argv)),
            "--lake" => data.lake = Some(value(&mut i, &argv)),
            "--extract" => data.extract.push(value(&mut i, &argv)),
            "--sql" => sql = value(&mut i, &argv),
            "--k" => data.k = number(&mut i, &argv),
            "--hops" => data.hops = number(&mut i, &argv),
            "--threads" => data.threads = number(&mut i, &argv),
            "--subgroups" => subgroups = true,
            "--no-pruning" => data.no_pruning = true,
            "--socket" => socket = Some(value(&mut i, &argv)),
            "--tcp" => tcp = Some(value(&mut i, &argv)),
            "--name" => name = value(&mut i, &argv),
            "--dataset" => dataset = value(&mut i, &argv),
            "--cache" => cache = number(&mut i, &argv),
            "--max-concurrent" => max_concurrent = number(&mut i, &argv),
            "--max-conns" => max_conns = number(&mut i, &argv),
            "--io-timeout-ms" => io_timeout_ms = number(&mut i, &argv) as u64,
            "--drain-timeout-ms" => drain_timeout_ms = number(&mut i, &argv) as u64,
            "--retries" => retries = number(&mut i, &argv),
            "--timeout-ms" => timeout_ms = number(&mut i, &argv) as u64,
            "--pipeline" => pipeline = number(&mut i, &argv),
            "--cancel" => cancel = true,
            "--vary-topk" => vary_topk = true,
            "--trace" => trace = true,
            "--last" => last = number(&mut i, &argv),
            "--trace-capacity" => trace_capacity = Some(number(&mut i, &argv)),
            "--mode" => mode = value(&mut i, &argv),
            "--out" => out = value(&mut i, &argv),
            "--max-store-bytes" => max_store_bytes = number(&mut i, &argv) as u64,
            "--max-memo-bytes" => max_memo_bytes = Some(number(&mut i, &argv) as u64),
            "--load" => load = Some(value(&mut i, &argv)),
            "--evict" => evict = Some(value(&mut i, &argv)),
            "--list" => list = true,
            "--shutdown" => shutdown = true,
            "--ping" => ping = true,
            "--stats" => stats = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }

    match sub.as_str() {
        "explain" => {
            if data.table.is_empty() || sql.is_empty() || data.extract.is_empty() {
                usage()
            }
            if data.kg.is_none() == data.lake.is_none() {
                eprintln!("exactly one of --kg or --lake is required");
                usage()
            }
            Command::Explain(ExplainArgs {
                data,
                sql,
                subgroups,
            })
        }
        "serve" => {
            if data.extract.is_empty() {
                usage()
            }
            if data.store.is_some() {
                // Store-backed: the table comes from an NXCOL file; a KG
                // triple file is optional, a lake is not supported.
                if !data.table.is_empty() || data.lake.is_some() {
                    eprintln!("--store replaces --table and cannot be combined with --lake");
                    usage()
                }
            } else {
                if data.table.is_empty() {
                    usage()
                }
                if data.kg.is_none() == data.lake.is_none() {
                    eprintln!("exactly one of --kg or --lake is required");
                    usage()
                }
            }
            if socket.is_none() == tcp.is_none() {
                eprintln!("exactly one of --socket or --tcp is required");
                usage()
            }
            Command::Serve(ServeArgs {
                data,
                socket,
                tcp,
                name,
                cache,
                max_concurrent,
                max_conns,
                io_timeout_ms,
                drain_timeout_ms,
                max_store_bytes,
                max_memo_bytes,
                trace_capacity,
            })
        }
        "submit" => {
            if socket.is_none() == tcp.is_none() {
                eprintln!("exactly one of --socket or --tcp is required");
                usage()
            }
            if !(shutdown || ping || stats) && sql.is_empty() {
                usage()
            }
            if pipeline > 0 && sql.is_empty() {
                eprintln!("--pipeline needs an --sql query to keep in flight");
                usage()
            }
            if vary_topk && pipeline == 0 {
                eprintln!("--vary-topk varies pipelined requests; it needs --pipeline");
                usage()
            }
            if cancel && pipeline < 2 {
                eprintln!("--cancel needs --pipeline of at least 2 (one request must hold the pipeline while another is cancelled)");
                usage()
            }
            if trace && pipeline > 0 {
                eprintln!("--trace is for single submits; --pipeline prints its own rpc summary");
                usage()
            }
            if trace && sql.is_empty() {
                eprintln!("--trace needs an --sql query to trace");
                usage()
            }
            Command::Submit(SubmitArgs {
                socket,
                tcp,
                dataset,
                sql,
                shutdown,
                ping,
                stats,
                retries,
                timeout_ms,
                pipeline,
                cancel,
                vary_topk,
                trace,
            })
        }
        "abuse" => {
            if socket.is_none() == tcp.is_none() {
                eprintln!("exactly one of --socket or --tcp is required");
                usage()
            }
            if !matches!(mode.as_str(), "stall" | "overlimit" | "busy") {
                eprintln!("--mode must be one of stall, overlimit, busy");
                usage()
            }
            Command::Abuse(AbuseArgs { socket, tcp, mode })
        }
        "pack" => {
            if data.table.is_empty() || out.is_empty() {
                eprintln!("pack needs --table <csv> and --out <nxcol>");
                usage()
            }
            Command::Pack(PackArgs {
                table: data.table,
                out,
            })
        }
        "inspect" => match data.store {
            Some(store) => Command::Inspect { store },
            None => {
                eprintln!("inspect needs --store <nxcol>");
                usage()
            }
        },
        "datasets" => {
            if socket.is_none() == tcp.is_none() {
                eprintln!("exactly one of --socket or --tcp is required");
                usage()
            }
            if load.is_some() && data.store.is_none() {
                eprintln!("--load needs --store <nxcol> (the path the server reads)");
                usage()
            }
            if load.is_none() && evict.is_none() {
                // Bare `datasets` means `--list`.
                list = true;
            }
            Command::Datasets(DatasetsArgs {
                socket,
                tcp,
                load,
                evict,
                list,
                store: data.store,
                kg: data.kg,
                extract: data.extract,
            })
        }
        "metrics" => {
            if socket.is_none() == tcp.is_none() {
                eprintln!("exactly one of --socket or --tcp is required");
                usage()
            }
            Command::Metrics { socket, tcp }
        }
        "trace" => {
            if socket.is_none() == tcp.is_none() {
                eprintln!("exactly one of --socket or --tcp is required");
                usage()
            }
            Command::Trace { socket, tcp, last }
        }
        other => {
            eprintln!("unknown subcommand {other:?}");
            usage()
        }
    }
}

/// A failed run and the process exit code that reports it: `1` for
/// local failures (bad input, dead socket, torn connection), `3` when
/// the server itself answered with an error frame — `Busy`, timeouts,
/// unknown datasets, bad queries — after any configured retries were
/// exhausted. Scripts can tell "my request was refused" from "I could
/// not even ask".
struct Failure {
    message: String,
    code: i32,
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure { message, code: 1 }
    }
}

/// Maps a client error to its exit code: server `Error` frames exit 3,
/// everything else is a local failure (exit 1).
fn client_failure(e: ClientError) -> Failure {
    let code = match &e {
        ClientError::Server(_) => 3,
        _ => 1,
    };
    Failure {
        message: e.to_string(),
        code,
    }
}

fn main() {
    let result: Result<(), Failure> = match parse_command() {
        Command::Explain(args) => run_explain(&args).map_err(Failure::from),
        Command::Serve(args) => run_serve(&args).map_err(Failure::from),
        Command::Submit(args) => run_submit(&args),
        Command::Abuse(args) => run_abuse(&args).map_err(Failure::from),
        Command::Pack(args) => run_pack(&args).map_err(Failure::from),
        Command::Inspect { store } => run_inspect(&store).map_err(Failure::from),
        Command::Datasets(args) => run_datasets(&args),
        Command::Metrics { socket, tcp } => run_metrics(&socket, &tcp),
        Command::Trace { socket, tcp, last } => run_trace(&socket, &tcp, last),
    };
    if let Err(failure) = result {
        eprintln!("nexus-cli: {}", failure.message);
        exit(failure.code)
    }
}

/// Loads the table, the knowledge source, and the extraction columns.
fn load_inputs(data: &DataArgs) -> Result<(Table, KnowledgeGraph, Vec<String>), String> {
    let table =
        read_csv_path(&data.table).map_err(|e| format!("failed to read {}: {e}", data.table))?;

    let kg = if let Some(path) = &data.kg {
        nexus::kg::read_kg_path(path).map_err(|e| format!("failed to read KG {path}: {e}"))?
    } else {
        let dir = data
            .lake
            .as_deref()
            .ok_or("exactly one of --kg or --lake is required")?;
        let mut lake = DataLake::new();
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("failed to read lake dir {dir}: {e}"))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("csv") {
                match read_csv_path(&path) {
                    Ok(t) => {
                        let name = path
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .unwrap_or("table")
                            .to_string();
                        eprintln!("lake: loaded {name} ({} rows)", t.n_rows());
                        lake.add_table(name, t);
                    }
                    Err(e) => eprintln!("lake: skipping {}: {e}", path.display()),
                }
            }
        }
        // Build one KG keyed by the first extraction column.
        let first = data
            .extract
            .first()
            .ok_or("at least one --extract column is required")?;
        let col = table.column(first).map_err(|e| e.to_string())?;
        lake.to_knowledge_graph(col, &LakeOptions::default())
    };

    Ok((table, kg, data.extract.clone()))
}

fn build_options(data: &DataArgs) -> Result<NexusOptions, String> {
    NexusOptions::builder()
        .max_explanation_size(data.k)
        .hops(data.hops)
        .threads(data.threads)
        .offline_pruning(!data.no_pruning)
        .online_pruning(!data.no_pruning)
        .build()
        .map_err(|e| e.to_string())
}

/// Prints the deterministic part of an explanation to stdout — the exact
/// same lines whether it came from a one-shot run or a server reply, so
/// the two paths are diffable.
fn print_explanation(query_text: &str, e: &ExplanationWire) {
    println!("query: {query_text}");
    let explained = if e.initial_cmi <= 0.0 {
        0.0
    } else {
        (1.0 - e.explained_cmi / e.initial_cmi).clamp(0.0, 1.0)
    };
    println!(
        "I(O;T|C) = {:.4} bits → {:.4} bits after conditioning ({:.0}% explained)",
        e.initial_cmi,
        e.explained_cmi,
        100.0 * explained
    );
    if e.attributes.is_empty() {
        println!("no explanation found (no candidate earned calibrated credit)");
    } else {
        println!("explanation:");
        for attr in &e.attributes {
            println!(
                "  {:<32} responsibility {:.2}{}",
                attr.name,
                attr.responsibility,
                if attr.weighted { "  [IPW]" } else { "" }
            );
        }
    }
    println!(
        "candidates {} → {} (offline) → {} (online); {} selection-biased",
        e.n_candidates_initial, e.n_after_offline, e.n_after_online, e.n_biased
    );
}

fn run_explain(args: &ExplainArgs) -> Result<(), String> {
    let (table, kg, extract) = load_inputs(&args.data)?;
    let query = parse(&args.sql).map_err(|e| format!("failed to parse SQL: {e}"))?;
    let options = build_options(&args.data)?;

    let request = ExplainRequest::new()
        .table(&table)
        .knowledge_graph(&kg)
        .extraction_columns(extract)
        .query(&query);
    let nexus = Nexus::new(options);
    let (explanation, artifacts) = nexus
        .run_with_artifacts(&request)
        .map_err(|e| format!("pipeline failed: {e}"))?;

    print_explanation(&query.to_string(), &explanation_to_wire(&explanation));

    let s = &explanation.stats;
    eprintln!(
        "timing: {:.2?} total; pool: {} thread(s), {} task(s), {:.2}x scoring speedup",
        s.total(),
        s.threads,
        s.pool_tasks,
        s.parallel_speedup()
    );
    eprintln!(
        "kernel: {} row(s) scanned, {} hash op(s), {} dense op(s), {} dense / {} sparse build(s)",
        s.kernel.rows_scanned,
        s.kernel.hash_ops,
        s.kernel.dense_ops,
        s.kernel.dense_builds,
        s.kernel.sparse_builds
    );
    eprintln!(
        "kernel v2: {} narrow scan(s), {} packed word(s) skipped, merge cells {} radix vs {} full, widths u8:{} u16:{} u32:{} u64:{} u128:{}",
        s.kernel.narrow_scans,
        s.kernel.packed_words_skipped,
        s.kernel.radix_merge_cells,
        s.kernel.full_merge_cells,
        s.kernel.builds_w8,
        s.kernel.builds_w16,
        s.kernel.builds_w32,
        s.kernel.builds_w64,
        s.kernel.builds_w128
    );

    if args.subgroups {
        let exclude: Vec<&str> = query
            .group_by
            .iter()
            .map(|s| s.as_str())
            .chain(query.outcome().map(|(_, o)| o))
            .collect();
        match unexplained_subgroups(
            &table,
            &artifacts.set,
            &artifacts.mcimr.selected,
            &exclude,
            &nexus.options,
            &SubgroupOptions {
                tau: 0.2 * explanation.initial_cmi.max(1.0),
                ..SubgroupOptions::default()
            },
        ) {
            Ok(groups) if groups.is_empty() => {
                println!("no unexplained subgroups above threshold")
            }
            Ok(groups) => {
                println!("unexplained subgroups:");
                for (i, g) in groups.iter().enumerate() {
                    println!(
                        "  {}. size {:>6}  score {:.3}  {}",
                        i + 1,
                        g.size,
                        g.score,
                        g.describe()
                    );
                }
            }
            Err(e) => eprintln!("subgroup search failed: {e}"),
        }
    }
    Ok(())
}

fn run_serve(args: &ServeArgs) -> Result<(), String> {
    let nexus = build_options(&args.data)?;
    let mut options = ServerOptions {
        nexus,
        cache_capacity: args.cache,
        max_resident_bytes: args.max_store_bytes,
        ..ServerOptions::default()
    };
    if args.max_concurrent > 0 {
        options.max_concurrent = args.max_concurrent;
    }
    if args.max_conns > 0 {
        options.max_connections = args.max_conns;
    }
    if args.io_timeout_ms > 0 {
        options.io_timeout = std::time::Duration::from_millis(args.io_timeout_ms);
    }
    if args.drain_timeout_ms > 0 {
        options.drain_timeout = std::time::Duration::from_millis(args.drain_timeout_ms);
    }
    if let Some(bytes) = args.max_memo_bytes {
        options.max_memo_bytes = bytes;
    }
    if let Some(capacity) = args.trace_capacity {
        options.trace_capacity = capacity;
    }

    let server = Server::new(options);
    if let Some(store_path) = &args.data.store {
        // Store-backed registration is lazy: the header is validated now,
        // the table materializes on the first request that needs it.
        server
            .add_dataset_from_store(
                args.name.clone(),
                store_path,
                args.data.kg.clone().map(std::path::PathBuf::from),
                args.data.extract.clone(),
            )
            .map_err(|e| format!("failed to register store dataset: {e}"))?;
        let info = nexus::store::inspect_path(store_path)
            .map_err(|e| format!("failed to inspect {store_path}: {e}"))?;
        eprintln!(
            "serve: dataset {:?} registered from {store_path} \
             ({} rows x {} cols, fingerprint {:#018x}); materialization is lazy",
            args.name, info.n_rows, info.n_cols, info.fingerprint
        );
    } else {
        let (table, kg, extract) = load_inputs(&args.data)?;
        server
            .add_dataset(args.name.clone(), table, kg, extract)
            .map_err(|e| format!("failed to load dataset: {e}"))?;
        eprintln!(
            "serve: dataset {:?} resident ({} KG entities); extraction columns {:?}",
            args.name,
            server.dataset_kg_entities(&args.name).unwrap_or(0),
            server
                .dataset_extraction_columns(&args.name)
                .unwrap_or_default(),
        );
    }

    if let Some(path) = &args.socket {
        eprintln!("serve: listening on unix socket {path}");
        server
            .serve_unix(path)
            .map_err(|e| format!("server failed: {e}"))?;
    } else if let Some(addr) = &args.tcp {
        server
            .serve_tcp(addr, |bound| eprintln!("serve: listening on tcp {bound}"))
            .map_err(|e| format!("server failed: {e}"))?;
    }
    eprintln!("serve: shut down cleanly");
    Ok(())
}

/// `pack`: reads a CSV and writes it as a deterministic NXCOL store file.
/// The summary goes to stdout — packing the same CSV twice prints the
/// same lines (and produces byte-identical files).
fn run_pack(args: &PackArgs) -> Result<(), String> {
    let table =
        read_csv_path(&args.table).map_err(|e| format!("failed to read {}: {e}", args.table))?;
    nexus::store::write_table_path(&table, &args.out)
        .map_err(|e| format!("failed to write {}: {e}", args.out))?;
    let info = nexus::store::inspect_path(&args.out)
        .map_err(|e| format!("failed to verify {}: {e}", args.out))?;
    println!(
        "packed {} rows x {} cols into {} bytes, fingerprint {:#018x}",
        info.n_rows, info.n_cols, info.file_bytes, info.fingerprint
    );
    Ok(())
}

/// `inspect`: validates an NXCOL file (magic, header, every section CRC)
/// and prints its layout to stdout.
fn run_inspect(store: &str) -> Result<(), String> {
    let info =
        nexus::store::inspect_path(store).map_err(|e| format!("failed to read {store}: {e}"))?;
    println!(
        "NXCOL v{}: {} rows x {} cols, {} bytes, fingerprint {:#018x}",
        info.version, info.n_rows, info.n_cols, info.file_bytes, info.fingerprint
    );
    for c in &info.columns {
        println!(
            "  {:<24} {:<7} {:<5} {:>4} block(s) {:>10} byte(s){}",
            c.name,
            c.dtype,
            c.encoding,
            c.n_blocks,
            c.section_bytes,
            if c.has_validity { "  [nulls]" } else { "" }
        );
    }
    Ok(())
}

fn connect_session(socket: &Option<String>, tcp: &Option<String>) -> Result<Session, Failure> {
    if let Some(path) = socket {
        Session::connect_unix(path)
    } else if let Some(addr) = tcp {
        Session::connect_tcp(addr)
    } else {
        return Err("exactly one of --socket or --tcp is required"
            .to_string()
            .into());
    }
    .map_err(client_failure)
}

/// `datasets`: registry management against a running server over one v2
/// session — load (lazy registration), evict, and list. The listing goes
/// to stdout and is deterministic for a given registry state.
fn run_datasets(args: &DatasetsArgs) -> Result<(), Failure> {
    let session = connect_session(&args.socket, &args.tcp)?;
    if let Some(name) = &args.load {
        let store = args
            .store
            .as_deref()
            .ok_or_else(|| Failure::from("--load needs --store <nxcol>".to_string()))?;
        let ack = session
            .load_dataset(name, store, args.kg.as_deref(), &args.extract)
            .map_err(client_failure)?;
        eprintln!(
            "datasets: {:?} registered from {store} (materialization is lazy, resident: {})",
            ack.name, ack.resident
        );
    }
    if let Some(name) = &args.evict {
        let ack = session.evict_dataset(name).map_err(client_failure)?;
        eprintln!(
            "datasets: {:?} evicted (resident: {})",
            ack.name, ack.resident
        );
    }
    if args.list {
        let entries = session.list_datasets().map_err(client_failure)?;
        if entries.is_empty() {
            println!("no datasets registered");
        }
        for d in &entries {
            println!(
                "{:<24} {:<10} {:>8} row(s) {:>10} byte(s) fingerprint {:#018x}",
                d.name,
                if d.resident { "resident" } else { "registered" },
                d.rows,
                d.store_bytes,
                d.fingerprint
            );
        }
    }
    Ok(())
}

fn connect(socket: &Option<String>, tcp: &Option<String>) -> Result<Client, String> {
    if let Some(path) = socket {
        Client::connect_unix(path).map_err(|e| format!("failed to connect to {path}: {e}"))
    } else if let Some(addr) = tcp {
        Client::connect_tcp(addr).map_err(|e| format!("failed to connect to {addr}: {e}"))
    } else {
        Err("exactly one of --socket or --tcp is required".to_string())
    }
}

fn run_submit(args: &SubmitArgs) -> Result<(), Failure> {
    if args.pipeline > 0 {
        return run_pipeline(args);
    }
    if args.trace {
        return run_traced_submit(args);
    }
    let mut client = connect(&args.socket, &args.tcp)?;
    if args.timeout_ms > 0 {
        client
            .set_io_timeout(Some(std::time::Duration::from_millis(args.timeout_ms)))
            .map_err(|e| format!("failed to set i/o timeout: {e}"))?;
    }
    if args.retries > 0 {
        client.set_retry_policy(RetryPolicy {
            max_retries: args.retries as u32,
            ..RetryPolicy::default()
        });
    }
    if args.ping {
        client.ping().map_err(client_failure)?;
        eprintln!("pong");
    }
    if args.stats {
        // One sorted `name value` line per counter — the registry's
        // iteration order, so the output is stable and grep-friendly.
        let s = client.stats().map_err(client_failure)?;
        for (name, value) in s.metrics() {
            eprintln!("{name} {value}");
        }
    }
    if !args.sql.is_empty() {
        // Parse locally too, so the echoed query line matches `explain`.
        let query = parse(&args.sql).map_err(|e| format!("failed to parse SQL: {e}"))?;
        let response = client
            .call(&ExplainCall::new(&args.dataset, &args.sql))
            .map_err(client_failure)?;
        print_explanation(&query.to_string(), &response.explanation);
        let s = &response.stats;
        eprintln!(
            "serve: {}; {} scored task(s); queued {:.3} ms; served in {:.3} ms",
            if s.cache_hit {
                "cache hit"
            } else {
                "cache miss"
            },
            s.scored_tasks,
            s.queue_nanos as f64 / 1e6,
            s.service_nanos as f64 / 1e6,
        );
    }
    if args.shutdown {
        client.shutdown().map_err(client_failure)?;
        eprintln!("server acknowledged shutdown");
    }
    Ok(())
}

/// One span tree, rendered for stderr: the `explain` root with its stage
/// children indented by depth, deterministic counts first, wall-clock
/// durations last (human-only — never grep the milliseconds).
fn trace_lines(t: &TraceWire) -> Vec<String> {
    let mut lines = vec![format!(
        "trace corr={}: {} span(s)",
        t.corr_id,
        t.spans.len()
    )];
    for s in &t.spans {
        lines.push(format!(
            "{:indent$}{} count={} {:.3} ms",
            "",
            s.name,
            s.count,
            s.duration_nanos as f64 / 1e6,
            indent = 2 * (s.depth as usize + 1)
        ));
    }
    lines
}

/// `submit --trace`: one v2 [`Session`] request, then its span tree. The
/// explanation goes to stdout exactly like a plain submit (still
/// diffable); the per-stage spans go to stderr.
fn run_traced_submit(args: &SubmitArgs) -> Result<(), Failure> {
    let query = parse(&args.sql).map_err(|e| format!("failed to parse SQL: {e}"))?;
    let session = connect_session(&args.socket, &args.tcp)?;
    let ticket = session
        .submit(&ExplainCall::new(&args.dataset, &args.sql))
        .map_err(client_failure)?;
    let corr = ticket.corr_id();
    let reply = ticket.wait().map_err(client_failure)?;
    print_explanation(&query.to_string(), &reply.explanation);
    let s = &reply.stats;
    eprintln!(
        "serve: {}; {} scored task(s); queued {:.3} ms; served in {:.3} ms",
        if s.cache_hit {
            "cache hit"
        } else {
            "cache miss"
        },
        s.scored_tasks,
        s.queue_nanos as f64 / 1e6,
        s.service_nanos as f64 / 1e6,
    );
    let traces = session.trace(16).map_err(client_failure)?;
    match traces.iter().find(|t| t.corr_id == corr) {
        Some(t) => {
            for line in trace_lines(t) {
                eprintln!("{line}");
            }
        }
        None => {
            eprintln!("trace corr={corr}: not recorded (server tracing disabled or ring overrun)")
        }
    }
    if args.shutdown {
        drop(session);
        let mut client = connect(&args.socket, &args.tcp)?;
        client.shutdown().map_err(client_failure)?;
        eprintln!("server acknowledged shutdown");
    }
    Ok(())
}

/// `metrics`: the full self-describing snapshot in Prometheus text
/// exposition format on stdout — dotted registry names with dots mapped
/// to underscores, sorted, counters and gauges typed.
fn run_metrics(socket: &Option<String>, tcp: &Option<String>) -> Result<(), Failure> {
    let session = connect_session(socket, tcp)?;
    let metrics = session.metrics().map_err(client_failure)?;
    for m in &metrics {
        print_prometheus_metric(m);
    }
    Ok(())
}

/// Prints one metric as Prometheus text exposition. Histogram components
/// (`.count`/`.sum`/`.bNN`) stay untyped — they are already expanded into
/// plain sample lines by the registry.
fn print_prometheus_metric(m: &MetricWire) {
    let name = m.name.replace('.', "_");
    match MetricKind::from_u8(m.kind) {
        Some(MetricKind::Counter) => println!("# TYPE {name} counter"),
        Some(MetricKind::Gauge) => println!("# TYPE {name} gauge"),
        // Histogram components and unknown future kinds: untyped samples.
        _ => {}
    }
    println!("{name} {}", m.value);
}

/// `trace`: span trees of the server's last `last` traced requests,
/// newest first, on stdout.
fn run_trace(socket: &Option<String>, tcp: &Option<String>, last: usize) -> Result<(), Failure> {
    let session = connect_session(socket, tcp)?;
    let traces = session.trace(last as u32).map_err(client_failure)?;
    if traces.is_empty() {
        println!("no traces recorded (is the server's --trace-capacity 0?)");
    }
    for t in &traces {
        for line in trace_lines(t) {
            println!("{line}");
        }
    }
    Ok(())
}

/// `submit --pipeline N`: one v2 [`Session`], `N` copies of the query in
/// flight at once, replies collected out of order. With `--cancel` the
/// last request is cancelled mid-flight instead of collected. All
/// successful replies must be byte-identical (they are the same
/// deterministic request); the first is printed to stdout exactly like a
/// plain `submit`, keeping the pipelined path diffable against it.
fn run_pipeline(args: &SubmitArgs) -> Result<(), Failure> {
    let query = parse(&args.sql).map_err(|e| format!("failed to parse SQL: {e}"))?;
    let session = connect_session(&args.socket, &args.tcp)?;
    eprintln!(
        "pipeline: v2 session open; server allows {} in-flight request(s)",
        session.max_inflight()
    );

    // With --vary-topk each request carries its own top_k override:
    // distinct result-cache keys over one shared candidate set, so the
    // burst exercises the sub-query memo (and its single-flight
    // coalescing) instead of the result cache.
    let tickets: Vec<_> = (0..args.pipeline)
        .map(|i| {
            let mut call = ExplainCall::new(&args.dataset, &args.sql);
            if args.vary_topk {
                call = call.top_k(i as u32 + 1);
            }
            session.submit(&call).map_err(client_failure)
        })
        .collect::<Result<_, _>>()?;

    // Cancel the *last* submitted request while the earlier ones hold
    // the pipeline; its final reply is a CANCELLED error we expect below.
    let cancelled_corr = if args.cancel {
        let last = tickets.last().expect("--cancel implies --pipeline >= 2");
        last.cancel().map_err(client_failure)?;
        Some(last.corr_id())
    } else {
        None
    };

    // A trailing ping is answered inline by the session loop, overtaking
    // every in-flight explain — the out-of-order completion proof.
    session.ping().map_err(client_failure)?;

    let mut first_reply: Option<nexus::serve::ExplainResponse> = None;
    for ticket in &tickets {
        if Some(ticket.corr_id()) == cancelled_corr {
            match ticket.wait() {
                Err(ClientError::Server(e)) if e.code == error_code::CANCELLED => {
                    eprintln!(
                        "pipeline: corr {} cancelled as requested ({})",
                        ticket.corr_id(),
                        e.message
                    );
                    continue;
                }
                Ok(_) => {
                    return Err(format!(
                        "pipeline: corr {} finished before the cancel landed",
                        ticket.corr_id()
                    )
                    .into())
                }
                Err(e) => return Err(client_failure(e)),
            }
        }
        let reply = ticket.wait().map_err(client_failure)?;
        eprintln!(
            "pipeline: corr {} {}; {} progress stage(s), {} partial(s)",
            ticket.corr_id(),
            if reply.stats.cache_hit {
                "cache hit"
            } else {
                "cache miss"
            },
            ticket.progress().len(),
            ticket.partials().len(),
        );
        if let Some(first) = &first_reply {
            // Varied requests legitimately differ (each asked for its own
            // top-k); identical requests must round-trip byte-identically.
            if !args.vary_topk && first.explanation_bytes != reply.explanation_bytes {
                return Err(format!(
                    "pipeline: corr {} reply differs from the first — \
                     pipelined replies must be byte-identical",
                    ticket.corr_id()
                )
                .into());
            }
        } else {
            first_reply = Some(reply);
        }
    }
    if let Some(reply) = &first_reply {
        print_explanation(&query.to_string(), &reply.explanation);
    }

    // The multiplexing summary, as sorted `name value` metric lines (the
    // `serve.rpc.*` family) — same format as `--stats`, grep-friendly.
    let s = session.stats().map_err(client_failure)?;
    for (name, value) in s.metrics() {
        if name.starts_with("serve.rpc.") || name.starts_with("memo.") {
            eprintln!("{name} {value}");
        }
    }
    if args.shutdown {
        // Free the session's connection slot first (--max-conns 1 servers
        // would otherwise bounce the controller connection).
        drop(tickets);
        drop(session);
        let mut client = connect(&args.socket, &args.tcp)?;
        client.shutdown().map_err(client_failure)?;
        eprintln!("server acknowledged shutdown");
    }
    Ok(())
}

/// A raw protocol stream for the abuse modes, which deliberately send
/// byte sequences no well-behaved [`Client`] would.
enum RawStream {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl std::io::Read for RawStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            RawStream::Unix(s) => s.read(buf),
            RawStream::Tcp(s) => s.read(buf),
        }
    }
}

impl std::io::Write for RawStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            RawStream::Unix(s) => s.write(buf),
            RawStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            RawStream::Unix(s) => s.flush(),
            RawStream::Tcp(s) => s.flush(),
        }
    }
}

fn raw_connect(socket: &Option<String>, tcp: &Option<String>) -> Result<RawStream, String> {
    let read_timeout = Some(std::time::Duration::from_secs(10));
    if let Some(path) = socket {
        let s = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| format!("failed to connect to {path}: {e}"))?;
        s.set_read_timeout(read_timeout).ok();
        Ok(RawStream::Unix(s))
    } else if let Some(addr) = tcp {
        let s = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("failed to connect to {addr}: {e}"))?;
        s.set_read_timeout(read_timeout).ok();
        Ok(RawStream::Tcp(s))
    } else {
        Err("exactly one of --socket or --tcp is required".to_string())
    }
}

/// Expects the next frame on `stream` to be `Error` with `code`.
fn expect_error_reply(stream: &mut RawStream, code: u16, what: &str) -> Result<(), String> {
    match read_frame(stream) {
        Ok(Frame::Error(e)) if e.code == code => {
            eprintln!(
                "abuse: got expected {what} reply (code {code}: {})",
                e.message
            );
            Ok(())
        }
        Ok(other) => Err(format!("expected {what} error, got {other:?}")),
        Err(e) => Err(format!("expected {what} error, stream failed: {e}")),
    }
}

/// Deliberately misbehaves at the wire level and fails (exit 1) unless
/// the server answers with the governance reply each mode expects:
///
/// * `stall` — sends a partial frame header and nothing more; expects an
///   `Error(TIMEOUT)` reply when the server's frame deadline fires.
/// * `overlimit` — declares a payload one byte over the 64 MiB cap;
///   expects `Error(FRAME_TOO_LARGE)` before any payload is sent.
/// * `busy` — opens connections (each proving admission with a served
///   `Ping`) until one is rejected with `Error(BUSY)` — works at any
///   `--max-conns` up to 64 — then proves a retrying client recovers
///   once the held connections close.
fn run_abuse(args: &AbuseArgs) -> Result<(), String> {
    use std::io::Write as _;
    match args.mode.as_str() {
        "stall" => {
            let mut stream = raw_connect(&args.socket, &args.tcp)?;
            let envelope = encode_frame(&Frame::Ping);
            stream
                .write_all(&envelope[..7])
                .map_err(|e| format!("failed to send partial header: {e}"))?;
            stream.flush().ok();
            eprintln!("abuse: sent 7 of {} bytes, stalling", envelope.len());
            expect_error_reply(&mut stream, error_code::TIMEOUT, "timeout")
        }
        "overlimit" => {
            let mut stream = raw_connect(&args.socket, &args.tcp)?;
            let mut envelope = encode_frame(&Frame::Ping);
            // Patch the payload length (bytes 11..15 of the header) to one
            // past the cap; the server must refuse before reading payload.
            let oversize = nexus::serve::wire::MAX_PAYLOAD + 1;
            envelope[11..15].copy_from_slice(&oversize.to_le_bytes());
            stream
                .write_all(&envelope[..15])
                .map_err(|e| format!("failed to send oversized header: {e}"))?;
            stream.flush().ok();
            eprintln!("abuse: declared a {oversize} byte payload");
            expect_error_reply(&mut stream, error_code::FRAME_TOO_LARGE, "frame-too-large")
        }
        "busy" => {
            // Fill the server's connection slots until an accept bounces.
            // Each held connection proves admission with a served Ping, so
            // this works at any --max-conns up to the 64-holder cap.
            let mut holders: Vec<RawStream> = Vec::new();
            loop {
                if holders.len() >= 64 {
                    return Err("no busy rejection after 64 held connections; \
                         is the server's --max-conns larger than that?"
                        .to_string());
                }
                let mut conn = raw_connect(&args.socket, &args.tcp)?;
                // The write may race the server's rejection close; the
                // buffered Busy reply is still readable, so only the read
                // decides the outcome.
                let _ = conn.write_all(&encode_frame(&Frame::Ping));
                conn.flush().ok();
                match read_frame(&mut conn) {
                    Ok(Frame::Pong) => holders.push(conn), // admitted: hold the slot
                    Ok(Frame::Error(e)) if e.code == error_code::BUSY => {
                        eprintln!(
                            "abuse: got expected busy reply with {} connection(s) held \
                             (code {}: {})",
                            holders.len(),
                            e.code,
                            e.message
                        );
                        break;
                    }
                    Ok(other) => return Err(format!("expected Pong or busy error, got {other:?}")),
                    Err(e) => return Err(format!("holder connection failed: {e}")),
                }
            }
            drop(holders);
            // With the slots free again, a retrying client must get through
            // even if it races the server reaping the held connections.
            let mut retrier = connect(&args.socket, &args.tcp)?;
            retrier.set_retry_policy(RetryPolicy {
                max_retries: 10,
                base_backoff: std::time::Duration::from_millis(20),
                max_backoff: std::time::Duration::from_millis(200),
                ..RetryPolicy::default()
            });
            retrier
                .ping()
                .map_err(|e| format!("retrying client after slot freed: {e}"))?;
            eprintln!("abuse: retrying client recovered after the slot freed");
            Ok(())
        }
        other => Err(format!("unknown abuse mode {other:?}")),
    }
}
