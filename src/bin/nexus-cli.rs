//! The `nexus-cli` command-line tool: explain a confounded correlation in
//! a CSV file using a knowledge graph (triple file) or a data lake (a
//! directory of CSVs) as the knowledge source — one-shot, or through a
//! resident explanation server.
//!
//! ```text
//! # One-shot explanation:
//! nexus-cli explain --table data.csv --kg knowledge.tsv \
//!           --extract Country --extract Continent \
//!           --sql "SELECT Country, avg(Salary) FROM t GROUP BY Country" \
//!           [--k 5] [--hops 1] [--threads N] [--subgroups] [--no-pruning]
//!
//! # Resident server on a Unix socket (or --tcp 127.0.0.1:PORT):
//! nexus-cli serve --socket /tmp/nexus.sock --table data.csv \
//!           --kg knowledge.tsv --extract Country [--name salaries]
//!
//! # Submit queries to it:
//! nexus-cli submit --socket /tmp/nexus.sock --sql "SELECT …" [--dataset salaries]
//! nexus-cli submit --socket /tmp/nexus.sock --shutdown
//! ```
//!
//! The legacy flag-only form (`nexus-cli --table … --sql …`) still works
//! and means `explain`.
//!
//! Deterministic explanation output goes to **stdout** (identical between
//! `explain` and `submit` for the same inputs — scriptable and diffable);
//! timings, cache statistics, and progress go to **stderr**.

use std::process::exit;

use nexus::core::{unexplained_subgroups, SubgroupOptions};
use nexus::kg::KnowledgeGraph;
use nexus::lake::{DataLake, LakeOptions};
use nexus::serve::wire::ExplanationWire;
use nexus::serve::{explanation_to_wire, Client, Server, ServerOptions};
use nexus::table::{read_csv_path, Table};
use nexus::{parse, ExplainRequest, Nexus, NexusOptions};

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         \x20 nexus-cli explain --table <csv> (--kg <triples.tsv> | --lake <dir>) \
         --extract <column>... --sql <query>\n\
         \x20         [--k N] [--hops N] [--threads N] [--subgroups] [--no-pruning]\n\
         \x20 nexus-cli serve (--socket <path> | --tcp <addr>) --table <csv> \
         (--kg <triples.tsv> | --lake <dir>) --extract <column>...\n\
         \x20         [--name <dataset>] [--k N] [--hops N] [--threads N] [--no-pruning] \
         [--cache N] [--max-concurrent N]\n\
         \x20 nexus-cli submit (--socket <path> | --tcp <addr>) --sql <query> \
         [--dataset <name>] | --shutdown | --ping | --stats"
    );
    exit(2)
}

/// Flags shared by `explain` and `serve`: where the data lives and how the
/// pipeline runs.
#[derive(Default)]
struct DataArgs {
    table: String,
    kg: Option<String>,
    lake: Option<String>,
    extract: Vec<String>,
    k: usize,
    hops: usize,
    threads: usize,
    no_pruning: bool,
}

struct ExplainArgs {
    data: DataArgs,
    sql: String,
    subgroups: bool,
}

struct ServeArgs {
    data: DataArgs,
    socket: Option<String>,
    tcp: Option<String>,
    name: String,
    cache: usize,
    max_concurrent: usize,
}

struct SubmitArgs {
    socket: Option<String>,
    tcp: Option<String>,
    dataset: String,
    sql: String,
    shutdown: bool,
    ping: bool,
    stats: bool,
}

enum Command {
    Explain(ExplainArgs),
    Serve(ServeArgs),
    Submit(SubmitArgs),
}

fn parse_command() -> Command {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage()
    }
    let sub = if argv[0].starts_with("--") {
        // Legacy flag-only form means `explain`.
        "explain".to_string()
    } else {
        argv.remove(0)
    };

    let mut data = DataArgs {
        k: 5,
        hops: 1,
        ..DataArgs::default()
    };
    let mut sql = String::new();
    let mut subgroups = false;
    let mut socket = None;
    let mut tcp = None;
    let mut name = "default".to_string();
    let mut dataset = "default".to_string();
    let mut cache = 256;
    let mut max_concurrent = 0usize;
    let (mut shutdown, mut ping, mut stats) = (false, false, false);

    let mut i = 0;
    let value = |i: &mut usize, argv: &[String]| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let number = |i: &mut usize, argv: &[String]| -> usize {
        value(i, argv).parse().unwrap_or_else(|_| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--table" => data.table = value(&mut i, &argv),
            "--kg" => data.kg = Some(value(&mut i, &argv)),
            "--lake" => data.lake = Some(value(&mut i, &argv)),
            "--extract" => data.extract.push(value(&mut i, &argv)),
            "--sql" => sql = value(&mut i, &argv),
            "--k" => data.k = number(&mut i, &argv),
            "--hops" => data.hops = number(&mut i, &argv),
            "--threads" => data.threads = number(&mut i, &argv),
            "--subgroups" => subgroups = true,
            "--no-pruning" => data.no_pruning = true,
            "--socket" => socket = Some(value(&mut i, &argv)),
            "--tcp" => tcp = Some(value(&mut i, &argv)),
            "--name" => name = value(&mut i, &argv),
            "--dataset" => dataset = value(&mut i, &argv),
            "--cache" => cache = number(&mut i, &argv),
            "--max-concurrent" => max_concurrent = number(&mut i, &argv),
            "--shutdown" => shutdown = true,
            "--ping" => ping = true,
            "--stats" => stats = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }

    match sub.as_str() {
        "explain" => {
            if data.table.is_empty() || sql.is_empty() || data.extract.is_empty() {
                usage()
            }
            if data.kg.is_none() == data.lake.is_none() {
                eprintln!("exactly one of --kg or --lake is required");
                usage()
            }
            Command::Explain(ExplainArgs {
                data,
                sql,
                subgroups,
            })
        }
        "serve" => {
            if data.table.is_empty() || data.extract.is_empty() {
                usage()
            }
            if data.kg.is_none() == data.lake.is_none() {
                eprintln!("exactly one of --kg or --lake is required");
                usage()
            }
            if socket.is_none() == tcp.is_none() {
                eprintln!("exactly one of --socket or --tcp is required");
                usage()
            }
            Command::Serve(ServeArgs {
                data,
                socket,
                tcp,
                name,
                cache,
                max_concurrent,
            })
        }
        "submit" => {
            if socket.is_none() == tcp.is_none() {
                eprintln!("exactly one of --socket or --tcp is required");
                usage()
            }
            if !(shutdown || ping || stats) && sql.is_empty() {
                usage()
            }
            Command::Submit(SubmitArgs {
                socket,
                tcp,
                dataset,
                sql,
                shutdown,
                ping,
                stats,
            })
        }
        other => {
            eprintln!("unknown subcommand {other:?}");
            usage()
        }
    }
}

fn main() {
    let result = match parse_command() {
        Command::Explain(args) => run_explain(&args),
        Command::Serve(args) => run_serve(&args),
        Command::Submit(args) => run_submit(&args),
    };
    if let Err(message) = result {
        eprintln!("nexus-cli: {message}");
        exit(1)
    }
}

/// Loads the table, the knowledge source, and the extraction columns.
fn load_inputs(data: &DataArgs) -> Result<(Table, KnowledgeGraph, Vec<String>), String> {
    let table =
        read_csv_path(&data.table).map_err(|e| format!("failed to read {}: {e}", data.table))?;

    let kg = if let Some(path) = &data.kg {
        nexus::kg::read_kg_path(path).map_err(|e| format!("failed to read KG {path}: {e}"))?
    } else {
        let dir = data
            .lake
            .as_deref()
            .ok_or("exactly one of --kg or --lake is required")?;
        let mut lake = DataLake::new();
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("failed to read lake dir {dir}: {e}"))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("csv") {
                match read_csv_path(&path) {
                    Ok(t) => {
                        let name = path
                            .file_stem()
                            .and_then(|s| s.to_str())
                            .unwrap_or("table")
                            .to_string();
                        eprintln!("lake: loaded {name} ({} rows)", t.n_rows());
                        lake.add_table(name, t);
                    }
                    Err(e) => eprintln!("lake: skipping {}: {e}", path.display()),
                }
            }
        }
        // Build one KG keyed by the first extraction column.
        let first = data
            .extract
            .first()
            .ok_or("at least one --extract column is required")?;
        let col = table.column(first).map_err(|e| e.to_string())?;
        lake.to_knowledge_graph(col, &LakeOptions::default())
    };

    Ok((table, kg, data.extract.clone()))
}

fn build_options(data: &DataArgs) -> Result<NexusOptions, String> {
    NexusOptions::builder()
        .max_explanation_size(data.k)
        .hops(data.hops)
        .threads(data.threads)
        .offline_pruning(!data.no_pruning)
        .online_pruning(!data.no_pruning)
        .build()
        .map_err(|e| e.to_string())
}

/// Prints the deterministic part of an explanation to stdout — the exact
/// same lines whether it came from a one-shot run or a server reply, so
/// the two paths are diffable.
fn print_explanation(query_text: &str, e: &ExplanationWire) {
    println!("query: {query_text}");
    let explained = if e.initial_cmi <= 0.0 {
        0.0
    } else {
        (1.0 - e.explained_cmi / e.initial_cmi).clamp(0.0, 1.0)
    };
    println!(
        "I(O;T|C) = {:.4} bits → {:.4} bits after conditioning ({:.0}% explained)",
        e.initial_cmi,
        e.explained_cmi,
        100.0 * explained
    );
    if e.attributes.is_empty() {
        println!("no explanation found (no candidate earned calibrated credit)");
    } else {
        println!("explanation:");
        for attr in &e.attributes {
            println!(
                "  {:<32} responsibility {:.2}{}",
                attr.name,
                attr.responsibility,
                if attr.weighted { "  [IPW]" } else { "" }
            );
        }
    }
    println!(
        "candidates {} → {} (offline) → {} (online); {} selection-biased",
        e.n_candidates_initial, e.n_after_offline, e.n_after_online, e.n_biased
    );
}

fn run_explain(args: &ExplainArgs) -> Result<(), String> {
    let (table, kg, extract) = load_inputs(&args.data)?;
    let query = parse(&args.sql).map_err(|e| format!("failed to parse SQL: {e}"))?;
    let options = build_options(&args.data)?;

    let request = ExplainRequest::new()
        .table(&table)
        .knowledge_graph(&kg)
        .extraction_columns(extract)
        .query(&query);
    let nexus = Nexus::new(options);
    let (explanation, artifacts) = nexus
        .run_with_artifacts(&request)
        .map_err(|e| format!("pipeline failed: {e}"))?;

    print_explanation(&query.to_string(), &explanation_to_wire(&explanation));

    let s = &explanation.stats;
    eprintln!(
        "timing: {:.2?} total; pool: {} thread(s), {} task(s), {:.2}x scoring speedup",
        s.total(),
        s.threads,
        s.pool_tasks,
        s.parallel_speedup()
    );
    eprintln!(
        "kernel: {} row(s) scanned, {} hash op(s), {} dense op(s), {} dense / {} sparse build(s)",
        s.kernel.rows_scanned,
        s.kernel.hash_ops,
        s.kernel.dense_ops,
        s.kernel.dense_builds,
        s.kernel.sparse_builds
    );

    if args.subgroups {
        let exclude: Vec<&str> = query
            .group_by
            .iter()
            .map(|s| s.as_str())
            .chain(query.outcome().map(|(_, o)| o))
            .collect();
        match unexplained_subgroups(
            &table,
            &artifacts.set,
            &artifacts.mcimr.selected,
            &exclude,
            &nexus.options,
            &SubgroupOptions {
                tau: 0.2 * explanation.initial_cmi.max(1.0),
                ..SubgroupOptions::default()
            },
        ) {
            Ok(groups) if groups.is_empty() => {
                println!("no unexplained subgroups above threshold")
            }
            Ok(groups) => {
                println!("unexplained subgroups:");
                for (i, g) in groups.iter().enumerate() {
                    println!(
                        "  {}. size {:>6}  score {:.3}  {}",
                        i + 1,
                        g.size,
                        g.score,
                        g.describe()
                    );
                }
            }
            Err(e) => eprintln!("subgroup search failed: {e}"),
        }
    }
    Ok(())
}

fn run_serve(args: &ServeArgs) -> Result<(), String> {
    let (table, kg, extract) = load_inputs(&args.data)?;
    let nexus = build_options(&args.data)?;
    let mut options = ServerOptions {
        nexus,
        cache_capacity: args.cache,
        ..ServerOptions::default()
    };
    if args.max_concurrent > 0 {
        options.max_concurrent = args.max_concurrent;
    }

    let server = Server::new(options);
    server
        .add_dataset(args.name.clone(), table, kg, extract)
        .map_err(|e| format!("failed to load dataset: {e}"))?;
    eprintln!(
        "serve: dataset {:?} resident ({} KG entities); extraction columns {:?}",
        args.name,
        server.dataset_kg_entities(&args.name).unwrap_or(0),
        server
            .dataset_extraction_columns(&args.name)
            .unwrap_or_default(),
    );

    if let Some(path) = &args.socket {
        eprintln!("serve: listening on unix socket {path}");
        server
            .serve_unix(path)
            .map_err(|e| format!("server failed: {e}"))?;
    } else if let Some(addr) = &args.tcp {
        server
            .serve_tcp(addr, |bound| eprintln!("serve: listening on tcp {bound}"))
            .map_err(|e| format!("server failed: {e}"))?;
    }
    eprintln!("serve: shut down cleanly");
    Ok(())
}

fn connect(socket: &Option<String>, tcp: &Option<String>) -> Result<Client, String> {
    if let Some(path) = socket {
        Client::connect_unix(path).map_err(|e| format!("failed to connect to {path}: {e}"))
    } else if let Some(addr) = tcp {
        Client::connect_tcp(addr).map_err(|e| format!("failed to connect to {addr}: {e}"))
    } else {
        Err("exactly one of --socket or --tcp is required".to_string())
    }
}

fn run_submit(args: &SubmitArgs) -> Result<(), String> {
    let mut client = connect(&args.socket, &args.tcp)?;
    if args.ping {
        client.ping().map_err(|e| e.to_string())?;
        eprintln!("pong");
    }
    if args.stats {
        let s = client.stats().map_err(|e| e.to_string())?;
        eprintln!(
            "server: {} dataset(s), {} cached, {} hit(s), {} miss(es), {} request(s)",
            s.datasets, s.cache_entries, s.cache_hits, s.cache_misses, s.requests_served
        );
        eprintln!(
            "kernel: {} row(s) scanned, {} hash op(s), {} dense op(s), {} dense / {} sparse build(s)",
            s.kernel_rows_scanned,
            s.kernel_hash_ops,
            s.kernel_dense_ops,
            s.kernel_dense_builds,
            s.kernel_sparse_builds
        );
    }
    if !args.sql.is_empty() {
        // Parse locally too, so the echoed query line matches `explain`.
        let query = parse(&args.sql).map_err(|e| format!("failed to parse SQL: {e}"))?;
        let response = client
            .explain(&args.dataset, &args.sql)
            .map_err(|e| e.to_string())?;
        print_explanation(&query.to_string(), &response.explanation);
        let s = &response.stats;
        eprintln!(
            "serve: {}; {} scored task(s); queued {:.3} ms; served in {:.3} ms",
            if s.cache_hit {
                "cache hit"
            } else {
                "cache miss"
            },
            s.scored_tasks,
            s.queue_nanos as f64 / 1e6,
            s.service_nanos as f64 / 1e6,
        );
    }
    if args.shutdown {
        client.shutdown().map_err(|e| e.to_string())?;
        eprintln!("server acknowledged shutdown");
    }
    Ok(())
}
